package linalg

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// cholPivotRelTol is the shared relative singularity threshold of the
// Cholesky factorizations (dense and sparse), mirroring luPivotRelTol:
// a pivot this far below the matrix's largest element means the
// conductance network is singular to working precision (e.g. a block
// thermally disconnected from the sink), and deserves ErrSingular
// rather than a NaN-laden factor.
const cholPivotRelTol = 1e-12

// SparseCholesky is the factorization P·A·Pᵀ = L·Lᵀ of a symmetric
// positive-definite sparse matrix, with an optional fill-reducing
// elimination order P. The strictly-lower factor is stored twice — by
// rows (forward substitution) and by columns (backward substitution) —
// trading memory for allocation-free triangular sweeps. Under natural
// order (nil permutation) the accumulation sequence matches the dense
// FactorCholesky term for term, so factor and solves are bitwise
// identical to the dense reference; under a fill-reducing order they
// agree to rounding.
type SparseCholesky struct {
	n    int
	perm []int // perm[k] = original index eliminated at step k; nil = natural
	diag []float64

	// Strictly-lower L by rows: row i's entries in increasing column order.
	rowPtr  []int
	rowCols []int32
	rowVals []float64
	// The same entries by columns, in increasing row order.
	colPtr  []int
	colRows []int32
	colVals []float64

	mu   sync.Mutex
	free [][]float64 // scratch freelist for permuted solves
}

// FactorSparseCholesky factors a in natural order (no permutation).
func FactorSparseCholesky(a *CSR) (*SparseCholesky, error) {
	return FactorSparseCholeskyOrdered(a, nil)
}

// FactorSparseCholeskyOrdered factors a under the elimination order
// perm (perm[k] = original index eliminated at step k); nil means
// natural order. It returns ErrNotSPD when a is not symmetric (within
// the same loose tolerance as the dense path) or a pivot is
// non-positive, and ErrSingular when a pivot falls below
// cholPivotRelTol times the matrix's max-abs element — the same
// near-singular contract as FactorLU.
func FactorSparseCholeskyOrdered(a *CSR, perm []int) (*SparseCholesky, error) {
	n := a.n
	inv, err := invertPermutation(n, perm)
	if err != nil {
		return nil, err
	}
	if err := checkCSRSymmetric(a); err != nil {
		return nil, err
	}
	f := &SparseCholesky{n: n, perm: perm, diag: make([]float64, n)}
	tiny := cholPivotRelTol * a.MaxAbs()

	// Up-looking row factorization in push form. Columns of L grow as
	// rows complete; when row i scans column j it sees exactly the
	// entries L[r,j] with r ≤ i. The dense workspace w holds row i of
	// the partially eliminated matrix; w[j] is final when the scan
	// reaches j because updates to it only flow from columns k < j,
	// all already processed this row.
	cols := make([][]int32, n)
	vals := make([][]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		// Scatter the lower triangle of row i of P·A·Pᵀ into w.
		orig := i
		if perm != nil {
			orig = perm[i]
		}
		for k := a.rowPtr[orig]; k < a.rowPtr[orig+1]; k++ {
			j := a.colIdx[k]
			if inv != nil {
				j = inv[j]
			}
			if j <= i {
				w[j] += a.vals[k]
			}
		}
		for j := 0; j < i; j++ {
			if w[j] == 0 {
				continue
			}
			lij := w[j] / f.diag[j]
			w[j] = 0
			// Appending (i, lij) to column j before the push folds the
			// diagonal update w[i] -= lij² into the same loop as the
			// off-diagonal ones, in the same increasing-k order the
			// dense code subtracts its inner products.
			cols[j] = append(cols[j], int32(i))
			vals[j] = append(vals[j], lij)
			cj, vj := cols[j], vals[j]
			for k := range cj {
				w[cj[k]] -= lij * vj[k]
			}
		}
		d := w[i]
		w[i] = 0
		if d <= tiny {
			// Same split as the dense FactorCholesky: clearly negative
			// is indefinite, within noise of zero is singular.
			if d <= -tiny {
				return nil, ErrNotSPD
			}
			return nil, ErrSingular
		}
		f.diag[i] = math.Sqrt(d)
	}
	f.compress(cols, vals)
	return f, nil
}

// compress flattens per-column factor entries into the dual flat
// layouts (by column, and transposed by row).
func (f *SparseCholesky) compress(cols [][]int32, vals [][]float64) {
	n := f.n
	nnz := 0
	for j := 0; j < n; j++ {
		nnz += len(cols[j])
	}
	f.colPtr = make([]int, n+1)
	f.colRows = make([]int32, 0, nnz)
	f.colVals = make([]float64, 0, nnz)
	rowLen := make([]int, n)
	for j := 0; j < n; j++ {
		f.colPtr[j] = len(f.colRows)
		f.colRows = append(f.colRows, cols[j]...)
		f.colVals = append(f.colVals, vals[j]...)
		for _, r := range cols[j] {
			rowLen[r]++
		}
	}
	f.colPtr[n] = len(f.colRows)
	f.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		f.rowPtr[i+1] = f.rowPtr[i] + rowLen[i]
	}
	f.rowCols = make([]int32, nnz)
	f.rowVals = make([]float64, nnz)
	next := make([]int, n)
	copy(next, f.rowPtr[:n])
	// Iterating columns in increasing j appends to each row in
	// increasing column order — the order forward substitution wants.
	for j := 0; j < n; j++ {
		for k := f.colPtr[j]; k < f.colPtr[j+1]; k++ {
			r := f.colRows[k]
			f.rowCols[next[r]] = int32(j)
			f.rowVals[next[r]] = f.colVals[k]
			next[r]++
		}
	}
}

// N returns the system dimension.
func (f *SparseCholesky) N() int { return f.n }

// NNZ returns the number of stored below-diagonal factor entries —
// the fill the elimination order is trying to minimize.
func (f *SparseCholesky) NNZ() int { return len(f.colRows) + f.n }

// Solve solves A·x = b using the factorization.
func (f *SparseCholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into the caller-supplied x without
// allocating on the steady path (permuted solves draw one scratch
// vector from an internal freelist; after first use the path is
// allocation-free). x and b may alias; b is otherwise not modified.
// SolveInto is safe for concurrent use.
func (f *SparseCholesky) SolveInto(x, b []float64) error {
	if len(b) != f.n {
		return fmt.Errorf("linalg: SparseCholesky.Solve rhs length %d, want %d", len(b), f.n)
	}
	if len(x) != f.n {
		return fmt.Errorf("linalg: SparseCholesky.SolveInto dst length %d, want %d", len(x), f.n)
	}
	if f.perm == nil {
		f.solveNatural(x, b)
		return nil
	}
	z := f.getScratch()
	for k := 0; k < f.n; k++ {
		z[k] = b[f.perm[k]]
	}
	f.solveNatural(z, z)
	for k := 0; k < f.n; k++ {
		x[f.perm[k]] = z[k]
	}
	f.putScratch(z)
	return nil
}

// solveNatural runs both triangular sweeps in the factor's own
// (already permuted) index space, in place on x. x and b may alias.
func (f *SparseCholesky) solveNatural(x, b []float64) {
	// L·y = b, with y accumulated in x.
	for i := 0; i < f.n; i++ {
		s := b[i]
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			s -= f.rowVals[k] * x[f.rowCols[k]]
		}
		x[i] = s / f.diag[i]
	}
	// Lᵀ·x = y in place, via columns of L.
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for k := f.colPtr[i]; k < f.colPtr[i+1]; k++ {
			s -= f.colVals[k] * x[f.colRows[k]]
		}
		x[i] = s / f.diag[i]
	}
}

func (f *SparseCholesky) getScratch() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.free); n > 0 {
		z := f.free[n-1]
		f.free = f.free[:n-1]
		return z
	}
	return make([]float64, f.n)
}

func (f *SparseCholesky) putScratch(z []float64) {
	f.mu.Lock()
	f.free = append(f.free, z)
	f.mu.Unlock()
}

// MinDegreeOrdering returns a greedy minimum-degree elimination order
// for the sparsity pattern of a (lowest index wins degree ties, so the
// order is deterministic). On the thermal RC networks it pushes the
// dense convection rows — the heat-sink and ring nodes every block
// couples to — to the end of the elimination, which is exactly where
// their fill is harmless.
func MinDegreeOrdering(a *CSR) []int {
	n := a.n
	adj := make([]map[int32]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int32]struct{})
	}
	for i := 0; i < n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if j := a.colIdx[k]; j != i && a.vals[k] != 0 {
				adj[i][int32(j)] = struct{}{}
				adj[j][int32(i)] = struct{}{}
			}
		}
	}
	perm := make([]int, 0, n)
	done := make([]bool, n)
	nbrs := make([]int, 0, n)
	for len(perm) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !done[v] && len(adj[v]) < bestDeg {
				best, bestDeg = v, len(adj[v])
			}
		}
		// Eliminate best: its neighbors become a clique. The map
		// iteration only fills nbrs, which is sorted before use, so
		// iteration order cannot reach the output.
		nbrs = nbrs[:0]
		for u := range adj[best] {
			nbrs = append(nbrs, int(u))
		}
		sort.Ints(nbrs)
		for _, u := range nbrs {
			delete(adj[u], int32(best))
		}
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				adj[nbrs[x]][int32(nbrs[y])] = struct{}{}
				adj[nbrs[y]][int32(nbrs[x])] = struct{}{}
			}
		}
		adj[best] = nil
		done[best] = true
		perm = append(perm, best)
	}
	return perm
}

// invertPermutation validates perm and returns its inverse
// (inv[original] = position), or (nil, nil) for a nil perm.
func invertPermutation(n int, perm []int) ([]int, error) {
	if perm == nil {
		return nil, nil
	}
	if len(perm) != n {
		return nil, fmt.Errorf("linalg: permutation length %d, want %d", len(perm), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for k, p := range perm {
		if p < 0 || p >= n || inv[p] != -1 {
			return nil, fmt.Errorf("linalg: invalid permutation entry %d at position %d", p, k)
		}
		inv[p] = k
	}
	return inv, nil
}

// checkCSRSymmetric mirrors the dense FactorCholesky symmetry check.
// Every off-diagonal entry is compared against its transpose slot in
// both directions, so a structurally one-sided entry is caught too.
func checkCSRSymmetric(a *CSR) error {
	tol := 1e-8 * (1 + a.MaxAbs())
	for i := 0; i < a.n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := a.colIdx[k]
			if j == i {
				continue
			}
			if math.Abs(a.vals[k]-a.At(j, i)) > tol {
				return ErrNotSPD
			}
		}
	}
	return nil
}
