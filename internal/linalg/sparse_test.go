package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// gridLaplacian assembles the SPD conductance-style matrix of an
// r×c grid with per-edge conductance g, a grounding leak to keep it
// nonsingular, through BOTH the dense Matrix.Add path and a
// SparseBuilder, using an identical Add sequence. Returns (dense, csr).
func gridLaplacian(r, c int, g, leak float64) (*Matrix, *CSR) {
	n := r * c
	m := NewMatrix(n, n)
	b := NewSparseBuilder(n)
	add := func(i, j int, v float64) {
		m.Add(i, j, v)
		b.Add(i, j, v)
	}
	idx := func(x, y int) int { return x*c + y }
	for x := 0; x < r; x++ {
		for y := 0; y < c; y++ {
			i := idx(x, y)
			if y+1 < c {
				j := idx(x, y+1)
				add(i, i, g)
				add(j, j, g)
				add(i, j, -g)
				add(j, i, -g)
			}
			if x+1 < r {
				j := idx(x+1, y)
				add(i, i, g)
				add(j, j, g)
				add(i, j, -g)
				add(j, i, -g)
			}
			add(i, i, leak)
		}
	}
	return m, b.Build()
}

func TestSparseBuilderMatchesDenseAddReplay(t *testing.T) {
	m, a := gridLaplacian(5, 7, 0.37, 0.011)
	if a.N() != m.Rows() {
		t.Fatalf("N = %d, want %d", a.N(), m.Rows())
	}
	d := a.Dense()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if d.At(i, j) != m.At(i, j) {
				t.Fatalf("Dense()[%d,%d] = %v, dense Add replay has %v", i, j, d.At(i, j), m.At(i, j))
			}
			if a.At(i, j) != m.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, a.At(i, j), m.At(i, j))
			}
		}
	}
	if a.MaxAbs() != m.MaxAbs() {
		t.Fatalf("MaxAbs = %v, want %v", a.MaxAbs(), m.MaxAbs())
	}
	// Every stored entry is a real nonzero on this assembly, and the
	// grid interior has 5 of them per row — far below n.
	if a.NNZ() >= m.Rows()*m.Cols() {
		t.Fatalf("NNZ = %d, not sparse for n = %d", a.NNZ(), m.Rows())
	}
}

func TestCSRMulVecInto(t *testing.T) {
	m, a := gridLaplacian(4, 4, 1.25, 0.5)
	x := make([]float64, a.N())
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.N())
	a.MulVecInto(y, x)
	want := m.MulVec(x)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestSparseCholeskyNaturalBitwiseMatchesDense(t *testing.T) {
	m, a := gridLaplacian(6, 6, 0.8, 0.05)
	dense, err := FactorCholesky(m)
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	sparse, err := FactorSparseCholesky(a)
	if err != nil {
		t.Fatalf("FactorSparseCholesky: %v", err)
	}
	n := a.N()
	for i := 0; i < n; i++ {
		if sparse.diag[i] != dense.l.At(i, i) {
			t.Fatalf("diag[%d] = %v, dense %v", i, sparse.diag[i], dense.l.At(i, i))
		}
		for k := sparse.rowPtr[i]; k < sparse.rowPtr[i+1]; k++ {
			j := int(sparse.rowCols[k])
			if sparse.rowVals[k] != dense.l.At(i, j) {
				t.Fatalf("L[%d,%d] = %v, dense %v", i, j, sparse.rowVals[k], dense.l.At(i, j))
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) + 1)
	}
	xd, err := dense.Solve(b)
	if err != nil {
		t.Fatalf("dense Solve: %v", err)
	}
	xs, err := sparse.Solve(b)
	if err != nil {
		t.Fatalf("sparse Solve: %v", err)
	}
	for i := range xd {
		if xs[i] != xd[i] {
			t.Fatalf("x[%d] = %v, dense %v (natural order must be bitwise identical)", i, xs[i], xd[i])
		}
	}
}

func TestSparseCholeskyOrderedSolvesAccurately(t *testing.T) {
	m, a := gridLaplacian(7, 5, 0.33, 0.02)
	perm := MinDegreeOrdering(a)
	f, err := FactorSparseCholeskyOrdered(a, perm)
	if err != nil {
		t.Fatalf("FactorSparseCholeskyOrdered: %v", err)
	}
	natural, err := FactorSparseCholesky(a)
	if err != nil {
		t.Fatalf("FactorSparseCholesky: %v", err)
	}
	if f.NNZ() > natural.NNZ() {
		t.Errorf("min-degree fill %d exceeds natural-order fill %d", f.NNZ(), natural.NNZ())
	}
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((i*13)%11) - 5
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := SolveLU(m, b)
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Aliased in-place solve must agree with the out-of-place one.
	alias := make([]float64, n)
	copy(alias, b)
	if err := f.SolveInto(alias, alias); err != nil {
		t.Fatalf("aliased SolveInto: %v", err)
	}
	for i := range alias {
		if alias[i] != x[i] {
			t.Fatalf("aliased x[%d] = %v, want %v", i, alias[i], x[i])
		}
	}
}

func TestMinDegreeOrderingDeterministicValidPermutation(t *testing.T) {
	_, a := gridLaplacian(6, 8, 1, 0.1)
	p1 := MinDegreeOrdering(a)
	p2 := MinDegreeOrdering(a)
	if len(p1) != a.N() {
		t.Fatalf("permutation length %d, want %d", len(p1), a.N())
	}
	seen := make([]bool, a.N())
	for i, v := range p1 {
		if v != p2[i] {
			t.Fatalf("ordering not deterministic at %d: %d vs %d", i, v, p2[i])
		}
		if v < 0 || v >= a.N() || seen[v] {
			t.Fatalf("invalid permutation entry %d at %d", v, i)
		}
		seen[v] = true
	}
}

// TestMinDegreeOrderingDefersDenseRow checks the property the thermal
// networks rely on: a node coupled to everything (the heat sink) is
// eliminated last, so its dense row causes no fill.
func TestMinDegreeOrderingDefersDenseRow(t *testing.T) {
	n := 10
	b := NewSparseBuilder(n)
	sink := 0
	for i := 1; i < n; i++ {
		b.Add(i, i, 2)
		b.Add(sink, sink, 1)
		b.Add(i, sink, -1)
		b.Add(sink, i, -1)
		if i+1 < n {
			b.Add(i, i+1, -0.5)
			b.Add(i+1, i, -0.5)
		}
	}
	perm := MinDegreeOrdering(b.Build())
	pos := -1
	for i, v := range perm {
		if v == sink {
			pos = i
		}
	}
	// Elimination shrinks the survivors' degrees too, so ties can pull
	// the sink in a little early — but it must land in the final clique.
	if pos < n-3 {
		t.Fatalf("dense sink row eliminated at position %d of %d, want near last (perm = %v)", pos, n, perm)
	}
}

func TestPCGMatchesDirect(t *testing.T) {
	m, a := gridLaplacian(8, 8, 0.6, 0.03)
	s, err := NewPCG(a, 1e-12, 0)
	if err != nil {
		t.Fatalf("NewPCG: %v", err)
	}
	n := a.N()
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = rng.Float64()*4 - 2
	}
	x, err := s.Solve(b)
	if err != nil {
		t.Fatalf("PCG Solve: %v", err)
	}
	want, err := SolveLU(m, b)
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Determinism: two solves of the same system are bitwise equal.
	x2, err := s.Solve(b)
	if err != nil {
		t.Fatalf("second Solve: %v", err)
	}
	for i := range x {
		if x[i] != x2[i] {
			t.Fatalf("PCG not deterministic at %d: %v vs %v", i, x[i], x2[i])
		}
	}
}

func TestPCGNoConverge(t *testing.T) {
	_, a := gridLaplacian(4, 4, 1, 0.01)
	s, err := NewPCG(a, 1e-14, 1)
	if err != nil {
		t.Fatalf("NewPCG: %v", err)
	}
	b := make([]float64, a.N())
	for i := range b {
		b[i] = 1
	}
	if _, err := s.Solve(b); !errors.Is(err, ErrNoConverge) {
		t.Fatalf("err = %v, want ErrNoConverge", err)
	}
}

func TestPCGRejectsBadInputs(t *testing.T) {
	_, a := gridLaplacian(3, 3, 1, 0.1)
	if _, err := NewPCG(a, 0, 0); err == nil {
		t.Fatal("NewPCG accepted zero tolerance")
	}
	if _, err := NewPCG(a, 1, 0); err == nil {
		t.Fatal("NewPCG accepted tolerance 1")
	}
	b := NewSparseBuilder(2)
	b.Add(0, 0, 1)
	// Missing diagonal at row 1.
	if _, err := NewPCG(b.Build(), 1e-10, 0); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD for non-positive diagonal", err)
	}
}

// TestCholeskyNearSingular is the satellite regression test: both the
// dense and sparse Cholesky factorizations must report ErrSingular on
// a conductance network that is singular to working precision (a
// floating island with only a vanishing leak to ground), matching
// FactorLU's contract instead of producing a NaN/garbage factor.
func TestCholeskyNearSingular(t *testing.T) {
	n := 4
	g := 1.0
	leak := 1e-16 // far below cholPivotRelTol * MaxAbs
	m := NewMatrix(n, n)
	b := NewSparseBuilder(n)
	add := func(i, j int, v float64) {
		m.Add(i, j, v)
		b.Add(i, j, v)
	}
	for i := 0; i+1 < n; i++ {
		add(i, i, g)
		add(i+1, i+1, g)
		add(i, i+1, -g)
		add(i+1, i, -g)
	}
	for i := 0; i < n; i++ {
		add(i, i, leak)
	}
	if _, err := FactorCholesky(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("dense err = %v, want ErrSingular", err)
	}
	if _, err := FactorSparseCholesky(b.Build()); !errors.Is(err, ErrSingular) {
		t.Fatalf("sparse err = %v, want ErrSingular", err)
	}
	if _, err := FactorLU(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("LU err = %v, want ErrSingular", err)
	}
	// A healthy leak still factors fine on the identical topology.
	m2, a2 := gridLaplacian(2, 2, g, 0.01)
	if _, err := FactorCholesky(m2); err != nil {
		t.Fatalf("dense healthy: %v", err)
	}
	if _, err := FactorSparseCholesky(a2); err != nil {
		t.Fatalf("sparse healthy: %v", err)
	}
}

func TestSparseCholeskyRejectsAsymmetric(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	b.Add(0, 1, -1)
	// No (1,0) entry: structurally asymmetric.
	if _, err := FactorSparseCholesky(b.Build()); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestSparseSolveIntoAllocFree(t *testing.T) {
	_, a := gridLaplacian(8, 8, 0.5, 0.02)
	perm := MinDegreeOrdering(a)
	f, err := FactorSparseCholeskyOrdered(a, perm)
	if err != nil {
		t.Fatalf("factor: %v", err)
	}
	pcg, err := NewPCG(a, 1e-10, 0)
	if err != nil {
		t.Fatalf("NewPCG: %v", err)
	}
	n := a.N()
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 3)
	}
	// Warm the scratch freelists once.
	if err := f.SolveInto(x, b); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if err := pcg.SolveInto(x, b); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := f.SolveInto(x, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
	}); n != 0 {
		t.Fatalf("SparseCholesky.SolveInto allocates %v per run after warm-up", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := pcg.SolveInto(x, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
	}); n != 0 {
		t.Fatalf("PCG.SolveInto allocates %v per run after warm-up", n)
	}
}
