package linalg

// SteadySolver is a factored (or preconditioned) linear system ready to
// answer A·x = b solves. The hotspot steady-state path holds one behind
// this interface so the dense Cholesky reference, the sparse Cholesky
// backend and the PCG backend are interchangeable; SolveInto is the
// zero-allocation hot form everywhere.
type SteadySolver interface {
	// N returns the system dimension.
	N() int
	// SolveInto solves A·x = b into the caller-supplied x without
	// allocating on the steady path. x and b may alias.
	SolveInto(x, b []float64) error
}

// N returns the system dimension.
func (f *LU) N() int { return f.n }

// N returns the system dimension.
func (c *Cholesky) N() int { return c.n }

// Compile-time checks that every backend satisfies the interface.
var (
	_ SteadySolver = (*LU)(nil)
	_ SteadySolver = (*Cholesky)(nil)
	_ SteadySolver = (*SparseCholesky)(nil)
	_ SteadySolver = (*PCG)(nil)
)
