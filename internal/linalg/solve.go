package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrNoConverge is returned by iterative solvers that exhaust their
// iteration budget.
var ErrNoConverge = errors.New("linalg: iterative solver did not converge")

// LU is an LU factorization with partial pivoting: P·A = L·U.
// It is the workhorse behind steady-state and backward-Euler transient
// thermal solves; factor once, solve many right-hand sides.
type LU struct {
	n    int
	lu   *Matrix // packed L (unit diagonal, strictly below) and U (on/above diagonal)
	piv  []int   // piv[k] = row swapped into position k at step k
	sign float64 // permutation parity, for Det
}

// luPivotRelTol is the relative singularity threshold of FactorLU: a
// pivot this far below the matrix's largest element signals a matrix
// that is singular to working precision — an exact-zero test would let
// near-singular systems through and silently amplify rounding noise
// into garbage solutions.
const luPivotRelTol = 1e-12

// FactorLU computes the LU factorization of the square matrix a.
// a is not modified. It returns ErrSingular when a pivot falls below
// luPivotRelTol times the matrix's max-abs element.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: FactorLU needs square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{n: n, lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu
	tiny := luPivotRelTol * a.MaxAbs()
	for k := 0; k < n; k++ {
		// Partial pivoting: largest |value| in column k at/below row k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs <= tiny {
			return nil, ErrSingular
		}
		f.piv[k] = p
		if p != k {
			f.sign = -f.sign
			for j := 0; j < n; j++ {
				vp, vk := lu.At(p, j), lu.At(k, j)
				lu.Set(p, j, vk)
				lu.Set(k, j, vp)
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) * inv
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -l*lu.At(k, j))
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b for one right-hand side. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into the caller-supplied x without
// allocating — the hot-loop form behind zero-allocation transient
// stepping. x and b may alias (b is fully consumed before x is
// overwritten when they are the same slice); b is otherwise not
// modified.
func (f *LU) SolveInto(x, b []float64) error {
	if len(b) != f.n {
		return fmt.Errorf("linalg: LU.Solve rhs length %d, want %d", len(b), f.n)
	}
	if len(x) != f.n {
		return fmt.Errorf("linalg: LU.SolveInto dst length %d, want %d", len(x), f.n)
	}
	copy(x, b)
	// Apply the row swaps to the RHS in factorization order.
	for k := 0; k < f.n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < f.n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := f.n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < f.n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU is a convenience wrapper: factor a and solve a·x = b once.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Cholesky is the factorization A = L·Lᵀ of a symmetric positive-definite
// matrix. Thermal conductance matrices are SPD by construction, so this is
// the preferred steady-state solver; LU remains the general fallback.
type Cholesky struct {
	n int
	l *Matrix // lower triangular
}

// FactorCholesky computes the Cholesky factorization of a. It returns
// ErrNotSPD if a is not symmetric (within a loose tolerance) or a pivot
// is non-positive, and ErrSingular when a pivot falls below
// cholPivotRelTol times the matrix's max-abs element — the same
// near-singular contract as FactorLU, so a degenerate conductance
// network fails loudly instead of amplifying rounding noise.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: FactorCholesky needs square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, ErrNotSPD
	}
	n := a.Rows()
	l := NewMatrix(n, n)
	tiny := cholPivotRelTol * a.MaxAbs()
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= tiny {
			// A pivot clearly below zero means indefinite; one within
			// rounding noise of zero means singular to working
			// precision (rounding can push it to either side of 0).
			if d <= -tiny {
				return nil, ErrNotSPD
			}
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into the caller-supplied x without
// allocating: both triangular sweeps run in place on x. x and b may
// alias; b is otherwise not modified.
func (c *Cholesky) SolveInto(x, b []float64) error {
	if len(b) != c.n {
		return fmt.Errorf("linalg: Cholesky.Solve rhs length %d, want %d", len(b), c.n)
	}
	if len(x) != c.n {
		return fmt.Errorf("linalg: Cholesky.SolveInto dst length %d, want %d", len(x), c.n)
	}
	// L·y = b, with y accumulated in x (x[j] for j < i already holds y).
	for i := 0; i < c.n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y in place: x[j] for j > i is already the final solution,
	// x[i] still holds y[i] when it is read.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < c.n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return nil
}

// SolveSPD solves a·x = b for an SPD matrix, trying Cholesky first and
// falling back to LU if the matrix fails the SPD checks (e.g. because of
// asymmetric rounding in network assembly).
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if c, err := FactorCholesky(a); err == nil {
		return c.Solve(b)
	}
	return SolveLU(a, b)
}

// SolveTridiag solves a tridiagonal system with the Thomas algorithm.
// sub, diag, sup are the sub-, main and super-diagonals; len(sub) and
// len(sup) must be len(diag)-1. The inputs are not modified.
func SolveTridiag(sub, diag, sup, b []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, errors.New("linalg: SolveTridiag empty system")
	}
	if len(sub) != n-1 || len(sup) != n-1 || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveTridiag inconsistent lengths sub=%d diag=%d sup=%d b=%d",
			len(sub), len(diag), len(sup), len(b))
	}
	c := make([]float64, n-1)
	d := make([]float64, n)
	if diag[0] == 0 {
		return nil, ErrSingular
	}
	if n > 1 {
		c[0] = sup[0] / diag[0]
	}
	d[0] = b[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i-1]*c[i-1]
		if den == 0 {
			return nil, ErrSingular
		}
		if i < n-1 {
			c[i] = sup[i] / den
		}
		d[i] = (b[i] - sub[i-1]*d[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}

// CG solves the SPD system a·x = b with the conjugate-gradient method,
// starting from the zero vector, to relative residual tol (on ‖b‖) within
// maxIter iterations. It exists as an ablation/verification path for the
// direct solvers and for larger grids.
func CG(a *Matrix, b []float64, tol float64, maxIter int) ([]float64, error) {
	n := len(b)
	if a.Rows() != n || a.Cols() != n {
		return nil, fmt.Errorf("linalg: CG dimension mismatch %dx%d vs %d", a.Rows(), a.Cols(), n)
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, nil
	}
	rs := Dot(r, r)
	for it := 0; it < maxIter; it++ {
		ap := a.MulVec(p)
		den := Dot(p, ap)
		if den <= 0 {
			return nil, ErrNotSPD
		}
		alpha := rs / den
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		if math.Sqrt(rsNew) <= tol*bnorm {
			return x, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return nil, ErrNoConverge
}
