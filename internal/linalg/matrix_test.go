package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) should panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestNewMatrixFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrixFrom with wrong length should panic")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set/At = %v, want 9", m.At(0, 1))
	}
	m.Add(0, 1, 1)
	if m.At(0, 1) != 10 {
		t.Errorf("Add = %v, want 10", m.At(0, 1))
	}
	row := m.Row(1)
	if !vecAlmostEq(row, []float64{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 99 // must not alias
	if m.At(1, 0) == 99 {
		t.Error("Row must return a copy")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	x := []float64{1, 2, 3}
	if got := id.MulVec(x); !vecAlmostEq(got, x, 0) {
		t.Errorf("I·x = %v, want %v", got, x)
	}
}

func TestClone(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not alias the original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 1, 1})
	if !vecAlmostEq(got, []float64{6, 15}, 1e-12) {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
}

func TestMulVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong length should panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1, 2})
}

func TestMul(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	got := a.Mul(b)
	want := NewMatrixFrom(2, 2, []float64{19, 22, 43, 50})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = \n%v want \n%v", got, want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.Transpose()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("Transpose dims = %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("Transpose values wrong: %v", mt)
	}
}

func TestScaleAndAddMatrix(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Errorf("Scale: At(1,1) = %v, want 8", m.At(1, 1))
	}
	s := m.AddMatrix(Identity(2))
	if s.At(0, 0) != 3 || s.At(1, 1) != 9 {
		t.Errorf("AddMatrix wrong: %v", s)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := NewMatrixFrom(2, 2, []float64{2, -1, -1, 2})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := NewMatrixFrom(2, 2, []float64{2, -1, 0, 2})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Error("non-square matrix cannot be symmetric")
	}
}

func TestMaxAbsAndString(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{-7, 2, 3, 4})
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", m.MaxAbs())
	}
	if !strings.Contains(m.String(), "-7") {
		t.Errorf("String output missing value: %q", m.String())
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v, want 32", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", Norm2([]float64{3, 4}))
	}
	if NormInf([]float64{-9, 2}) != 9 {
		t.Error("NormInf wrong")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if !vecAlmostEq(y, []float64{3, 5, 7}, 0) {
		t.Errorf("AXPY = %v", y)
	}
	if !vecAlmostEq(SubVec(b, a), []float64{3, 3, 3}, 0) {
		t.Error("SubVec wrong")
	}
	if !vecAlmostEq(AddVec(a, a), []float64{2, 4, 6}, 0) {
		t.Error("AddVec wrong")
	}
	if !vecAlmostEq(ScaleVec(3, a), []float64{3, 6, 9}, 0) {
		t.Error("ScaleVec wrong")
	}
	if Mean(a) != 2 {
		t.Errorf("Mean = %v, want 2", Mean(a))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Max(a) != 3 || Min(a) != 1 {
		t.Error("Max/Min wrong")
	}
}

func TestMaxMinPanicOnEmpty(t *testing.T) {
	for _, f := range []func([]float64) float64{Max, Min} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Max/Min of empty vector should panic")
				}
			}()
			f(nil)
		}()
	}
}

// Property: (AᵀB)ᵀ = BᵀA for random matrices.
func TestTransposeMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		lhs := a.Transpose().Mul(b).Transpose()
		rhs := b.Transpose().Mul(a)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(lhs.At(i, j), rhs.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomSPD returns a random symmetric positive-definite matrix
// A = BᵀB + n·I (shared by the solver tests).
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}
