// Package geom provides the small amount of 2-D geometry the floorplanner
// and the thermal model need: axis-aligned rectangles, overlap tests,
// adjacency detection and shared-edge measurement.
//
// All coordinates are in metres unless a caller documents otherwise; the
// package itself is unit-agnostic.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default tolerance used by the approximate predicates in this
// package. Floorplan coordinates come out of floating-point packing
// arithmetic, so exact comparison would spuriously miss adjacencies.
const Eps = 1e-9

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle identified by its lower-left corner
// (X, Y) and its extent (W, H). A Rect with non-positive W or H is
// degenerate; Valid reports whether a Rect is usable.
type Rect struct {
	X, Y float64 // lower-left corner
	W, H float64 // width (x-extent) and height (y-extent)
}

// NewRect constructs a rectangle from a lower-left corner and extents.
func NewRect(x, y, w, h float64) Rect { return Rect{X: x, Y: y, W: w, H: h} }

// Valid reports whether r has strictly positive area and finite fields.
func (r Rect) Valid() bool {
	for _, v := range [...]float64{r.X, r.Y, r.W, r.H} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return r.W > 0 && r.H > 0
}

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W * r.H }

// Center returns the centre point of r.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the top edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// AspectRatio returns H/W. It is +Inf for zero width.
func (r Rect) AspectRatio() float64 {
	if r.W == 0 {
		return math.Inf(1)
	}
	return r.H / r.W
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.6g,%.6g %.6gx%.6g)", r.X, r.Y, r.W, r.H)
}

// Contains reports whether the point p lies inside r (boundaries included,
// within Eps).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X-Eps && p.X <= r.MaxX()+Eps &&
		p.Y >= r.Y-Eps && p.Y <= r.MaxY()+Eps
}

// Overlaps reports whether r and s share interior area (touching edges do
// not count as overlap).
func (r Rect) Overlaps(s Rect) bool {
	return OverlapArea(r, s) > Eps
}

// OverlapArea returns the area of the intersection of r and s, or 0 if
// they do not intersect.
func OverlapArea(r, s Rect) float64 {
	w := math.Min(r.MaxX(), s.MaxX()) - math.Max(r.X, s.X)
	h := math.Min(r.MaxY(), s.MaxY()) - math.Max(r.Y, s.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the bounding box of r and s.
func Union(r, s Rect) Rect {
	x0 := math.Min(r.X, s.X)
	y0 := math.Min(r.Y, s.Y)
	x1 := math.Max(r.MaxX(), s.MaxX())
	y1 := math.Max(r.MaxY(), s.MaxY())
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// BoundingBox returns the smallest rectangle covering all rs. It returns
// the zero Rect for an empty slice.
func BoundingBox(rs []Rect) Rect {
	if len(rs) == 0 {
		return Rect{}
	}
	bb := rs[0]
	for _, r := range rs[1:] {
		bb = Union(bb, r)
	}
	return bb
}

// SharedEdge returns the length of the boundary segment shared by r and s
// and the axis it runs along. Two rectangles share an edge when they abut:
// one's right edge coincides with the other's left edge (a vertical shared
// edge, axis = Vertical) or one's top edge coincides with the other's
// bottom edge (horizontal, axis = Horizontal). Overlapping or separated
// rectangles share no edge. The tolerance tol is used for the coincidence
// test; pass geom.Eps when unsure.
func SharedEdge(r, s Rect, tol float64) (length float64, axis Axis) {
	// Vertical adjacency: r right touches s left, or s right touches r left.
	if math.Abs(r.MaxX()-s.X) <= tol || math.Abs(s.MaxX()-r.X) <= tol {
		lo := math.Max(r.Y, s.Y)
		hi := math.Min(r.MaxY(), s.MaxY())
		if hi-lo > tol {
			return hi - lo, Vertical
		}
	}
	// Horizontal adjacency: r top touches s bottom, or vice versa.
	if math.Abs(r.MaxY()-s.Y) <= tol || math.Abs(s.MaxY()-r.Y) <= tol {
		lo := math.Max(r.X, s.X)
		hi := math.Min(r.MaxX(), s.MaxX())
		if hi-lo > tol {
			return hi - lo, Horizontal
		}
	}
	return 0, None
}

// Adjacent reports whether r and s abut along a boundary segment longer
// than tol.
func Adjacent(r, s Rect, tol float64) bool {
	l, _ := SharedEdge(r, s, tol)
	return l > 0
}

// Axis identifies the orientation of a shared edge.
type Axis int

// Axis values. None means the rectangles do not abut.
const (
	None Axis = iota
	Horizontal
	Vertical
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case Horizontal:
		return "horizontal"
	case Vertical:
		return "vertical"
	default:
		return "none"
	}
}

// TotalArea sums the areas of rs.
func TotalArea(rs []Rect) float64 {
	var sum float64
	for _, r := range rs {
		sum += r.Area()
	}
	return sum
}

// AnyOverlap reports whether any pair in rs overlaps, returning the first
// offending pair's indices. It is O(n²), fine for floorplan-sized inputs.
func AnyOverlap(rs []Rect) (i, j int, ok bool) {
	for a := 0; a < len(rs); a++ {
		for b := a + 1; b < len(rs); b++ {
			if rs[a].Overlaps(rs[b]) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}
