package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want {2.5 4}", got)
	}
	if got := r.MaxX(); got != 4 {
		t.Errorf("MaxX = %v, want 4", got)
	}
	if got := r.MaxY(); got != 6 {
		t.Errorf("MaxY = %v, want 6", got)
	}
	if got := r.AspectRatio(); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("AspectRatio = %v, want 4/3", got)
	}
}

func TestRectValid(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"positive", NewRect(0, 0, 1, 1), true},
		{"zero width", NewRect(0, 0, 0, 1), false},
		{"zero height", NewRect(0, 0, 1, 0), false},
		{"negative width", NewRect(0, 0, -1, 1), false},
		{"nan", Rect{X: math.NaN(), W: 1, H: 1}, false},
		{"inf", Rect{W: math.Inf(1), H: 1}, false},
		{"negative origin ok", NewRect(-5, -5, 2, 2), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Valid(); got != tc.want {
				t.Errorf("Valid(%v) = %v, want %v", tc.r, got, tc.want)
			}
		})
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{4, 6}
	if got := p.Add(q); got != (Point{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestContains(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	for _, p := range []Point{{1, 1}, {0, 0}, {2, 2}, {0, 2}} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{{-1, 1}, {3, 1}, {1, -0.5}, {1, 2.5}} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestOverlapArea(t *testing.T) {
	tests := []struct {
		name string
		r, s Rect
		want float64
	}{
		{"identical", NewRect(0, 0, 2, 2), NewRect(0, 0, 2, 2), 4},
		{"half", NewRect(0, 0, 2, 2), NewRect(1, 0, 2, 2), 2},
		{"corner", NewRect(0, 0, 2, 2), NewRect(1, 1, 2, 2), 1},
		{"touching edge", NewRect(0, 0, 2, 2), NewRect(2, 0, 2, 2), 0},
		{"disjoint", NewRect(0, 0, 1, 1), NewRect(5, 5, 1, 1), 0},
		{"contained", NewRect(0, 0, 4, 4), NewRect(1, 1, 2, 2), 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := OverlapArea(tc.r, tc.s); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("OverlapArea = %v, want %v", got, tc.want)
			}
			// Symmetry.
			if got := OverlapArea(tc.s, tc.r); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("OverlapArea (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOverlapsEdgeTouchDoesNotCount(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(1, 0, 1, 1)
	if r.Overlaps(s) {
		t.Error("edge-touching rectangles must not be reported as overlapping")
	}
}

func TestUnionAndBoundingBox(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(2, 3, 1, 1)
	u := Union(r, s)
	want := NewRect(0, 0, 3, 4)
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	bb := BoundingBox([]Rect{r, s, NewRect(-1, 0, 0.5, 0.5)})
	if bb.X != -1 || bb.MaxX() != 3 || bb.MaxY() != 4 {
		t.Errorf("BoundingBox = %v", bb)
	}
	if got := BoundingBox(nil); got != (Rect{}) {
		t.Errorf("BoundingBox(nil) = %v, want zero", got)
	}
}

func TestSharedEdge(t *testing.T) {
	tests := []struct {
		name     string
		r, s     Rect
		wantLen  float64
		wantAxis Axis
	}{
		{"side by side full", NewRect(0, 0, 1, 2), NewRect(1, 0, 1, 2), 2, Vertical},
		{"side by side partial", NewRect(0, 0, 1, 2), NewRect(1, 1, 1, 2), 1, Vertical},
		{"stacked", NewRect(0, 0, 3, 1), NewRect(0, 1, 3, 1), 3, Horizontal},
		{"stacked partial", NewRect(0, 0, 3, 1), NewRect(2, 1, 3, 1), 1, Horizontal},
		{"corner touch only", NewRect(0, 0, 1, 1), NewRect(1, 1, 1, 1), 0, None},
		{"disjoint", NewRect(0, 0, 1, 1), NewRect(4, 4, 1, 1), 0, None},
		{"overlapping", NewRect(0, 0, 2, 2), NewRect(1, 0, 2, 2), 0, None},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			gotLen, gotAxis := SharedEdge(tc.r, tc.s, Eps)
			if math.Abs(gotLen-tc.wantLen) > 1e-9 || gotAxis != tc.wantAxis {
				t.Errorf("SharedEdge = (%v, %v), want (%v, %v)",
					gotLen, gotAxis, tc.wantLen, tc.wantAxis)
			}
			// Symmetry.
			revLen, revAxis := SharedEdge(tc.s, tc.r, Eps)
			if math.Abs(revLen-gotLen) > 1e-9 || revAxis != gotAxis {
				t.Errorf("SharedEdge not symmetric: (%v,%v) vs (%v,%v)",
					gotLen, gotAxis, revLen, revAxis)
			}
		})
	}
}

func TestAdjacent(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	if !Adjacent(r, NewRect(1, 0, 1, 1), Eps) {
		t.Error("abutting rects should be adjacent")
	}
	if Adjacent(r, NewRect(1.1, 0, 1, 1), Eps) {
		t.Error("separated rects should not be adjacent")
	}
}

func TestAxisString(t *testing.T) {
	if None.String() != "none" || Horizontal.String() != "horizontal" || Vertical.String() != "vertical" {
		t.Error("Axis.String mismatch")
	}
}

func TestTotalArea(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 1, 1), NewRect(0, 0, 2, 3)}
	if got := TotalArea(rs); got != 7 {
		t.Errorf("TotalArea = %v, want 7", got)
	}
}

func TestAnyOverlap(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 1, 1), NewRect(2, 0, 1, 1), NewRect(2.5, 0, 1, 1)}
	i, j, ok := AnyOverlap(rs)
	if !ok || i != 1 || j != 2 {
		t.Errorf("AnyOverlap = (%d,%d,%v), want (1,2,true)", i, j, ok)
	}
	if _, _, ok := AnyOverlap(rs[:2]); ok {
		t.Error("AnyOverlap on disjoint rects = true, want false")
	}
}

// Property: overlap area is symmetric, bounded by each rect's area, and
// a rectangle always fully overlaps itself.
func TestOverlapAreaProperties(t *testing.T) {
	gen := func(r *rand.Rand) Rect {
		return NewRect(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*5+0.01, r.Float64()*5+0.01)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, s := gen(rng), gen(rng)
		ov := OverlapArea(r, s)
		if ov < 0 || ov > r.Area()+1e-9 || ov > s.Area()+1e-9 {
			return false
		}
		if math.Abs(ov-OverlapArea(s, r)) > 1e-12 {
			return false
		}
		return math.Abs(OverlapArea(r, r)-r.Area()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the union of two rects contains both and has area at least
// the max of the two.
func TestUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRect(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*5+0.01, rng.Float64()*5+0.01)
		s := NewRect(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*5+0.01, rng.Float64()*5+0.01)
		u := Union(r, s)
		if u.Area() < r.Area()-1e-9 || u.Area() < s.Area()-1e-9 {
			return false
		}
		return u.Contains(r.Center()) && u.Contains(s.Center()) &&
			u.Contains(Point{r.X, r.Y}) && u.Contains(Point{s.MaxX(), s.MaxY()})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
