package thermalsched

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the closed-loop golden files from current behavior.
// Run it only when a change to simulate/stream output is intentional.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from current behavior")

// closedLoopGoldenCases spans the pre-existing simulate and stream
// surfaces: every controller kind and policy that existed before the
// shared coloop core, plus the corners that exercise its machinery
// (conditional branches, warm start, multi-replica fan-out, sub-unity
// duration factors). New controller kinds are deliberately absent —
// the goldens pin the refactor, not the feature.
func closedLoopGoldenCases() []struct {
	name string
	req  Request
} {
	condScenario := ScenarioSpec{
		Name: "golden-cond",
		Seed: 5,
		Graph: ScenarioGraphParams{
			Tasks:         24,
			BranchDensity: 0.4,
		},
	}
	return []struct {
		name string
		req  Request
	}{
		{"simulate_bm1_toggle", NewRequest(FlowSimulate, WithBenchmark("Bm1"),
			WithSimulate(SimulateSpec{Controller: "toggle", Replicas: 3, MinFactor: 0.85, Seed: 7}))},
		{"simulate_bm2_pi_warm", NewRequest(FlowSimulate, WithBenchmark("Bm2"),
			WithSimulate(SimulateSpec{Controller: "pi", Replicas: 2, MinFactor: 0.9, Seed: 11, WarmStart: true}))},
		{"simulate_bm3_none", NewRequest(FlowSimulate, WithBenchmark("Bm3"),
			WithSimulate(SimulateSpec{Controller: "none"}))},
		{"simulate_scenario_conditional", NewRequest(FlowSimulate, WithScenario(condScenario),
			WithSimulate(SimulateSpec{Controller: "toggle", Replicas: 3, MinFactor: 0.7, Seed: 3,
				Conditional: true, WarmStart: true}))},
		{"stream_fifo", NewRequest(FlowStream, WithStream(StreamSpec{Seed: 2, SimSeed: 9, MinFactor: 0.8, Replicas: 2}),
			func(r *Request) { r.Policy = StreamPolicyFIFO })},
		{"stream_random", NewRequest(FlowStream, WithStream(StreamSpec{Seed: 2, SimSeed: 9, MinFactor: 0.8, Replicas: 2}),
			func(r *Request) { r.Policy = StreamPolicyRandom })},
		{"stream_coolest", NewRequest(FlowStream, WithStream(StreamSpec{Seed: 4, SimSeed: 1, MinFactor: 0.75, Replicas: 2}),
			func(r *Request) { r.Policy = StreamPolicyCoolest })},
		{"stream_greedy", NewRequest(FlowStream, WithStream(StreamSpec{Seed: 4, SimSeed: 1, MinFactor: 0.75, Replicas: 2}),
			func(r *Request) { r.Policy = StreamPolicyGreedy })},
	}
}

// TestClosedLoopGolden pins the simulate and stream flows byte-for-byte
// against checked-in responses captured before the internal/coloop
// extraction: the shared-core refactor must be behavior-preserving on
// every pre-existing spec. ElapsedMS is zeroed — it is documented as
// excluded from the byte-identity contract.
func TestClosedLoopGolden(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range closedLoopGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := engine.Run(context.Background(), tc.req)
			if err != nil {
				t.Fatal(err)
			}
			resp.ElapsedMS = 0
			got, err := json.MarshalIndent(resp, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test -run ClosedLoopGolden -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: response diverged from the pre-refactor golden\ngot:\n%s\nwant:\n%s",
					tc.name, got, want)
			}
		})
	}
}
