// Campaign: generate a family of synthetic scenarios — random task
// graphs on heterogeneous generated platforms — and fan a policy
// comparison across them on the Engine's worker pool, then drill into
// one scenario with the generate flow.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A campaign is one request: N seeded scenarios × the compared
	// policies, scheduled concurrently, aggregated into win rates and
	// percentiles. The same spec always reproduces the same campaign.
	resp, err := engine.Run(ctx, thermalsched.NewRequest(
		thermalsched.FlowCampaign,
		thermalsched.WithCampaign(thermalsched.CampaignSpec{
			Scenarios: 12,
			Seed:      2005,
			MinTasks:  20,
			MaxTasks:  80,
			Policies:  []string{"baseline", "h3", "thermal"},
			Template: &thermalsched.ScenarioSpec{
				Platform: thermalsched.ScenarioPlatformParams{
					PEs: 6, MinSpeed: 0.6, MaxSpeed: 2.0,
				},
			},
		}),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Campaign)

	// Reproduce any row exactly: the generate flow serializes the
	// scenario behind a fingerprint into .tg/.lib text.
	row := resp.Campaign.Rows[0]
	gen, err := engine.Run(ctx, thermalsched.NewRequest(
		thermalsched.FlowGenerate,
		thermalsched.WithScenario(thermalsched.ScenarioSpec{
			Name: row.Scenario,
			Seed: row.Seed,
			Graph: thermalsched.ScenarioGraphParams{
				Shape: row.Shape, Tasks: row.Tasks,
			},
			Platform: thermalsched.ScenarioPlatformParams{
				PEs: 6, MinSpeed: 0.6, MaxSpeed: 2.0,
			},
		}),
	))
	if err != nil {
		log.Fatal(err)
	}
	sc := gen.Scenario
	fmt.Printf("\nscenario %s (fingerprint %s): %d tasks, %d edges, depth %d, deadline %g\n",
		sc.Name, sc.Fingerprint, sc.Tasks, sc.Edges, sc.Depth, sc.Deadline)
	if sc.Fingerprint != row.Fingerprint {
		log.Fatalf("fingerprint mismatch: campaign row %s vs generate %s", row.Fingerprint, sc.Fingerprint)
	}
	fmt.Println("fingerprint matches the campaign row — the scenario is fully reproducible")
}
