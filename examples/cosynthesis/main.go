// Co-synthesis (paper Fig. 1a): synthesize a customized architecture
// for a benchmark under the power-aware and the thermal-aware flows and
// compare the selected PE sets, floorplans and temperatures — the
// comparison behind the paper's Table 2. Both runs go through one
// Engine, whose request options replace the legacy config structs.
//
//	go run ./examples/cosynthesis
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	g, err := engine.Benchmark("Bm2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-synthesizing an architecture for %s (deadline %.0f)\n\n", g.Name, g.Deadline)

	for _, policy := range []thermalsched.Policy{thermalsched.MinTaskEnergy, thermalsched.ThermalAware} {
		resp, err := engine.Run(ctx, thermalsched.NewRequest(
			thermalsched.FlowCoSynthesis,
			thermalsched.WithBenchmark("Bm2"),
			thermalsched.WithPolicy(policy),
			thermalsched.WithFloorplanGenerations(20),
		))
		if err != nil {
			log.Fatal(err)
		}
		m := resp.Metrics
		fmt.Printf("=== %s flow\n", resp.Policy)
		fmt.Printf("architecture: %d PEs, cost %.0f\n", len(resp.Architecture), m.Cost)
		for _, pe := range resp.Architecture {
			fmt.Printf("  %-5s %-9s %5.1f mm²\n", pe.Name, pe.Type, pe.AreaMM2)
		}
		fmt.Printf("makespan      %.1f (deadline %.0f)\n", m.Makespan, g.Deadline)
		fmt.Printf("total power   %.2f W\n", m.TotalPower)
		fmt.Printf("temperatures  max %.2f °C, avg %.2f °C\n\n", m.MaxTemp, m.AvgTemp)

		if policy == thermalsched.ThermalAware {
			fmt.Println("thermal-aware floorplan (.flp):")
			fmt.Print(resp.Floorplan)
		}
	}
}
