// Co-synthesis (paper Fig. 1a): synthesize a customized architecture for
// a benchmark under the power-aware and the thermal-aware flows and
// compare the selected PE sets, floorplans and temperatures — the
// comparison behind the paper's Table 2.
//
//	go run ./examples/cosynthesis
package main

import (
	"fmt"
	"log"
	"os"

	"thermalsched"
)

func main() {
	lib, err := thermalsched.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	g, err := thermalsched.Benchmark("Bm2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-synthesizing an architecture for %s (deadline %.0f)\n\n", g.Name, g.Deadline)

	for _, policy := range []thermalsched.Policy{thermalsched.MinTaskEnergy, thermalsched.ThermalAware} {
		res, err := thermalsched.RunCoSynthesisConfig(g, lib, thermalsched.CoSynthConfig{
			Policy:               policy,
			FloorplanGenerations: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("=== %s flow\n", policy)
		fmt.Printf("architecture: %d PEs, cost %.0f\n", len(res.Arch.PEs), m.Cost)
		for _, pe := range res.Arch.PEs {
			t := res.Schedule.Lib.PEType(pe.Type)
			fmt.Printf("  %-5s %-9s %5.1f mm²\n", pe.Name, t.Name, t.Area*1e6)
		}
		fmt.Printf("floorplan:    %s\n", res.Plan)
		fmt.Printf("makespan      %.1f (deadline %.0f)\n", m.Makespan, g.Deadline)
		fmt.Printf("total power   %.2f W\n", m.TotalPower)
		fmt.Printf("temperatures  max %.2f °C, avg %.2f °C\n\n", m.MaxTemp, m.AvgTemp)

		if policy == thermalsched.ThermalAware {
			fmt.Println("thermal-aware floorplan (.flp):")
			if err := res.Plan.Write(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
}
