// Platform design (paper Fig. 1b): evaluate every ASP policy on the
// fixed platform of four identical PEs across all four paper
// benchmarks, reproducing the platform columns of Tables 1 and 3. The
// full 4×5 grid is submitted as one Engine.RunBatch call, which fans
// the twenty runs out across a bounded worker pool while every run
// shares one cached thermal-model factorization of the platform.
//
//	go run ./examples/platform_design
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	benchmarks := []string{"Bm1", "Bm2", "Bm3", "Bm4"}
	policies := thermalsched.Policies()

	var reqs []thermalsched.Request
	for _, b := range benchmarks {
		for _, p := range policies {
			reqs = append(reqs, thermalsched.NewRequest(
				thermalsched.FlowPlatform,
				thermalsched.WithBenchmark(b),
				thermalsched.WithPolicy(p),
			))
		}
	}
	resps, err := engine.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Platform-based design flow: four identical PEs, fixed floorplan.")
	fmt.Printf("%-16s %-12s %8s %9s %9s %10s\n",
		"benchmark", "policy", "TotPow", "MaxTemp", "AvgTemp", "makespan")

	i := 0
	for _, b := range benchmarks {
		g, err := engine.Benchmark(b)
		if err != nil {
			log.Fatal(err)
		}
		var baseMax float64
		for _, p := range policies {
			resp := resps[i]
			i++
			if resp.Error != "" {
				log.Fatalf("%s/%s: %s", b, p, resp.Error)
			}
			m := resp.Metrics
			note := ""
			if p == thermalsched.Baseline {
				baseMax = m.MaxTemp
			} else if d := baseMax - m.MaxTemp; d > 0 {
				note = fmt.Sprintf("  (-%.1f °C vs baseline)", d)
			}
			if !m.Feasible {
				note += "  MISSES DEADLINE"
			}
			fmt.Printf("%-16s %-12s %8.2f %9.2f %9.2f %10.1f%s\n",
				fmt.Sprintf("%s/%d/%d/%.0f", g.Name, g.NumTasks(), g.NumEdges(), g.Deadline),
				resp.Policy, m.TotalPower, m.MaxTemp, m.AvgTemp, m.Makespan, note)
		}
		fmt.Println()
	}

	hits, misses, _ := engine.ModelCacheStats()
	fmt.Printf("thermal-model cache: %d hits, %d misses across %d runs\n",
		hits, misses, len(reqs))
}
