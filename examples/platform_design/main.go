// Platform design (paper Fig. 1b): evaluate every ASP policy on the
// fixed platform of four identical PEs across all four paper benchmarks,
// reproducing the platform columns of Tables 1 and 3.
//
//	go run ./examples/platform_design
package main

import (
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	lib, err := thermalsched.StandardLibrary()
	if err != nil {
		log.Fatal(err)
	}
	graphs, err := thermalsched.Benchmarks()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Platform-based design flow: four identical PEs, fixed floorplan.")
	fmt.Printf("%-16s %-12s %8s %9s %9s %10s\n",
		"benchmark", "policy", "TotPow", "MaxTemp", "AvgTemp", "makespan")

	for _, g := range graphs {
		var baseMax float64
		for _, policy := range thermalsched.Policies() {
			res, err := thermalsched.RunPlatform(g, lib, policy)
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics
			note := ""
			if policy == thermalsched.Baseline {
				baseMax = m.MaxTemp
			} else if d := baseMax - m.MaxTemp; d > 0 {
				note = fmt.Sprintf("  (-%.1f °C vs baseline)", d)
			}
			if !m.Feasible {
				note += "  MISSES DEADLINE"
			}
			fmt.Printf("%-16s %-12s %8.2f %9.2f %9.2f %10.1f%s\n",
				fmt.Sprintf("%s/%d/%d/%.0f", g.Name, g.NumTasks(), g.NumEdges(), g.Deadline),
				policy, m.TotalPower, m.MaxTemp, m.AvgTemp, m.Makespan, note)
		}
		fmt.Println()
	}
}
