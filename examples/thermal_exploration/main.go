// Thermal exploration: beyond the paper's steady-state tables, this
// example exercises the substrates directly — a thermal-aware GA
// floorplan for a heterogeneous SoC, a transient warm-up simulation of
// a real schedule's power profile, and the temperature-dependent
// leakage fixed point the paper's introduction motivates. The platform
// schedule comes from Engine.Platform, the typed counterpart of
// Engine.Run that returns the full result (schedule, thermal model)
// instead of the serializable Response.
//
//	go run ./examples/thermal_exploration
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Thermal-aware floorplanning of a small heterogeneous SoC.
	blocks := []thermalsched.FloorplanBlock{
		{Name: "cpu0", Area: 16e-6, MinAspect: 0.5, MaxAspect: 2},
		{Name: "cpu1", Area: 16e-6, MinAspect: 0.5, MaxAspect: 2},
		{Name: "dsp", Area: 9e-6, MinAspect: 0.5, MaxAspect: 2},
		{Name: "accel", Area: 25e-6, MinAspect: 0.5, MaxAspect: 2},
	}
	hot := map[string]float64{"cpu0": 7, "cpu1": 7, "dsp": 2, "accel": 4}
	cfg := thermalsched.DefaultGAConfig()
	cfg.Generations = 40
	cfg.Eval = func(fp *thermalsched.Floorplan, pw map[string]float64) (float64, error) {
		m, err := thermalsched.NewThermalModel(fp, thermalsched.DefaultThermalConfig())
		if err != nil {
			return 0, err
		}
		t, err := m.SteadyState(pw)
		if err != nil {
			return 0, err
		}
		return t.Max(), nil
	}
	cfg.Power = hot
	fpRes, err := thermalsched.FloorplanGA(blocks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. thermal-aware floorplan: %s, peak %.2f °C\n\n", fpRes.Plan, fpRes.PeakTemp)

	// 2. Transient warm-up of a real platform schedule.
	g, err := engine.Benchmark("Bm2")
	if err != nil {
		log.Fatal(err)
	}
	run, err := engine.Platform(ctx, g, thermalsched.WithPolicy(thermalsched.ThermalAware))
	if err != nil {
		log.Fatal(err)
	}
	profile, err := thermalsched.PowerProfileOf(run.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	// One schedule pass is short; loop it to watch the die warm toward
	// steady state (0.1 s per schedule time unit keeps the demo quick).
	const timeScale = 0.1
	samples, err := profile.Sample(10) // 10 time units per sample
	if err != nil {
		log.Fatal(err)
	}
	tr, err := run.Model.NewTransient(10 * timeScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. transient warm-up (schedule looped 6x):")
	for pass := 0; pass < 6; pass++ {
		var peak float64
		for _, s := range samples {
			temps, err := tr.StepVec(s)
			if err != nil {
				log.Fatal(err)
			}
			if t := temps.Max(); t > peak {
				peak = t
			}
		}
		fmt.Printf("   after pass %d (t=%6.1f s): peak %.2f °C\n", pass+1, tr.Time(), peak)
	}
	fmt.Println()

	// 3. Leakage feedback: how much extra heat does temperature-dependent
	// leakage add at the operating point?
	dyn, err := run.Schedule.PEAveragePower(g.Deadline)
	if err != nil {
		log.Fatal(err)
	}
	noLeak, err := run.Model.SteadyStateVec(dyn)
	if err != nil {
		log.Fatal(err)
	}
	leak := thermalsched.DefaultLeakage()
	fp, err := leak.FixedPoint(dyn, func(p []float64) ([]float64, error) {
		t, err := run.Model.SteadyStateVec(p)
		if err != nil {
			return nil, err
		}
		return t.Values(), nil
	}, 1e-6, 100)
	if err != nil {
		log.Fatal(err)
	}
	var peakWith float64
	var extra float64
	for i, t := range fp.Temps {
		if t > peakWith {
			peakWith = t
		}
		extra += fp.Leakage[i]
	}
	fmt.Printf("3. leakage feedback: peak %.2f °C -> %.2f °C (+%.2f W leakage, %d iterations)\n",
		noLeak.Max(), peakWith, extra, fp.Iterations)
}
