// Closed-loop DTM comparison: the run-time counterpart of the paper's
// Table 3. Both the power-aware (heuristic 3) and the thermal-aware
// schedule of each paper benchmark run under the *same* dynamic thermal
// management controller, co-simulated in lockstep with the transient
// thermal model: when a block crosses the trigger the controller cuts
// its PE's power, the task executing there stretches, and the slowdown
// ripples into downstream tasks. The paper's claim — a thermally
// balanced schedule is worth real performance, not just cooler tables —
// shows up as less accumulated throttle time and fewer deadline misses.
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}

	// One controller setting for everything: trigger just below the
	// benchmarks' steady-state peaks, so only thermally unbalanced
	// schedules spend much time above it.
	spec := thermalsched.SimulateSpec{
		Controller: "toggle",
		TriggerC:   82,
		Hysteresis: 2,
		Throttle:   0.5,
		Replicas:   8,
		MinFactor:  0.85,
		Seed:       1,
	}

	fmt.Println("Closed-loop DTM comparison (toggle @ 82 °C, throttle 0.5, 8 replicas)")
	fmt.Printf("%-5s | %-13s | %12s %12s %10s\n", "bench", "policy", "throttle p50", "makespan p50", "miss rate")
	for _, bench := range []string{"Bm1", "Bm2", "Bm3", "Bm4"} {
		for _, policy := range []thermalsched.Policy{thermalsched.MinTaskEnergy, thermalsched.ThermalAware} {
			resp, err := engine.Run(context.Background(), thermalsched.NewRequest(
				thermalsched.FlowSimulate,
				thermalsched.WithBenchmark(bench),
				thermalsched.WithPolicy(policy),
				thermalsched.WithSimulate(spec),
			))
			if err != nil {
				log.Fatal(err)
			}
			s := resp.Simulate
			fmt.Printf("%-5s | %-13s | %12.1f %12.1f %9.0f%%\n",
				bench, resp.Policy, s.ThrottleTime.P50, s.Makespan.P50, 100*s.DeadlineMissRate)
		}
	}
	fmt.Println("\nLower throttle time at the same controller settings is the run-time")
	fmt.Println("payoff of thermal-aware scheduling; the static tables cannot show it.")

	// Reactive vs predictive, side by side: the same thermal-aware
	// schedule under the toggle (throttle after the trigger trips) and
	// under predictive admission control (forecast the dispatch's rise
	// and delay the start instead). The trade the campaign duels
	// measure — deadline-miss rate against realized peak temperature —
	// in one table.
	admit := spec
	admit.Controller = "admit"
	admit.FairC, admit.SeriousC, admit.CriticalC = 72, 80, 88
	admit.SeriousScale, admit.CriticalScale = 0.7, 0.4
	admit.RetryAfter = 2

	fmt.Println("\nReactive toggle vs predictive admission (thermal-aware schedules)")
	fmt.Printf("%-5s | %-10s | %12s %12s %10s %10s\n",
		"bench", "controller", "peak p50 °C", "makespan p50", "miss rate", "denials")
	for _, bench := range []string{"Bm1", "Bm2", "Bm3", "Bm4"} {
		for _, cspec := range []thermalsched.SimulateSpec{spec, admit} {
			resp, err := engine.Run(context.Background(), thermalsched.NewRequest(
				thermalsched.FlowSimulate,
				thermalsched.WithBenchmark(bench),
				thermalsched.WithPolicy(thermalsched.ThermalAware),
				thermalsched.WithSimulate(cspec),
			))
			if err != nil {
				log.Fatal(err)
			}
			s := resp.Simulate
			fmt.Printf("%-5s | %-10s | %12.2f %12.1f %9.0f%% %10.1f\n",
				bench, s.Controller, s.PeakTempC.P50, s.Makespan.P50,
				100*s.DeadlineMissRate, s.MeanAdmissionDenials)
		}
	}
	fmt.Println("\nAdmission holds starts while a block is hot instead of crawling it")
	fmt.Println("at a throttle fraction — the miss-rate / peak-temperature trade the")
	fmt.Println("campaign controller duels score across whole scenario families.")
}
