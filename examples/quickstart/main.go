// Quickstart: build an Engine, schedule a paper benchmark on the 4-PE
// platform with the thermal-aware ASP, and print the resulting
// temperatures.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	// One Engine per process: it owns the technology library, the parsed
	// benchmarks, and the thermal-model cache shared by every run.
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	g, err := engine.Benchmark("Bm1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d tasks, %d edges, deadline %.0f\n\n",
		g.Name, g.NumTasks(), g.NumEdges(), g.Deadline)

	// Compare the traditional baseline against the thermal-aware ASP.
	for _, policy := range []thermalsched.Policy{thermalsched.Baseline, thermalsched.ThermalAware} {
		resp, err := engine.Run(ctx, thermalsched.NewRequest(
			thermalsched.FlowPlatform,
			thermalsched.WithBenchmark("Bm1"),
			thermalsched.WithPolicy(policy),
		))
		if err != nil {
			log.Fatal(err)
		}
		m := resp.Metrics
		fmt.Printf("%-10s makespan %6.1f  total %5.2f W  max %6.2f °C  avg %6.2f °C\n",
			policy, m.Makespan, m.TotalPower, m.MaxTemp, m.AvgTemp)
	}

	fmt.Println("\nThe thermal-aware ASP balances heat across the platform's PEs,")
	fmt.Println("lowering the peak and average die temperature at the same deadline.")
}
