// Stream: dispatch an online workload — periodic sources plus a
// bursty aperiodic Poisson stream — over the closed-loop thermal
// co-simulator, comparing the thermal-greedy online policy against
// FIFO, and measure both against the clairvoyant offline bound (the
// price of onlineness).
//
//	go run ./examples/stream
package main

import (
	"context"
	"fmt"
	"log"

	"thermalsched"
)

func main() {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The stream spec is pure data: the same seed always generates the
	// same arrival trace and platform, so results reproduce exactly.
	spec := thermalsched.StreamSpec{
		Seed: 2,
		Arrivals: thermalsched.StreamArrivalParams{
			Horizon:   600,  // arrivals stop here; execution may run past it
			Sources:   3,    // strictly periodic sources
			Rate:      0.08, // aperiodic Poisson bursts per time unit
			BurstMean: 3,    // mean geometric burst size
		},
		MinFactor: 0.7, // realized durations in [0.7, 1] × WCET
		Replicas:  3,   // Monte-Carlo over dispatch seeds SimSeed+i
	}

	// The online policies place jobs with past knowledge only: the
	// current temperatures, the running set, and the jobs that already
	// arrived — never future arrivals or realized durations.
	for _, policy := range []string{
		thermalsched.StreamPolicyFIFO,
		thermalsched.StreamPolicyGreedy,
	} {
		req := thermalsched.NewRequest(thermalsched.FlowStream,
			thermalsched.WithStream(spec))
		req.Policy = policy
		resp, err := engine.Run(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		s := resp.Stream
		fmt.Printf("%-8s %d jobs (%d periodic, %d aperiodic) on %d PEs\n",
			policy, s.Jobs, s.PeriodicJobs, s.AperiodicJobs, s.PEs)
		fmt.Printf("  miss rate %.3f   peak %.1f°C   makespan %.1f\n",
			s.MissRate.Mean, s.PeakTempC.Mean, s.Makespan.Mean)
		// Price of onlineness: realized makespan over the clairvoyant
		// lower bound for the same realized trace — ≥ 1 by construction;
		// the excess is what not knowing the future cost the policy.
		fmt.Printf("  price of onlineness %.3f (clairvoyant bound %.1f)\n\n",
			s.Price.Mean, s.OfflineBound.Mean)
	}

	// Campaigns duel online policies across a seeded family of stream
	// workloads, with the same reproducibility contract as offline
	// campaigns.
	resp, err := engine.Run(ctx, thermalsched.NewRequest(
		thermalsched.FlowCampaign,
		thermalsched.WithCampaign(thermalsched.CampaignSpec{
			Scenarios: 6,
			Seed:      7,
			Stream:    &thermalsched.StreamSpec{MinFactor: 0.8},
		}),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Campaign)
}
