package thermalsched

import (
	"context"
	"math"
	"testing"
)

// The solver-backend contract, end to end: a sparse-backend engine must
// produce the same schedules as the dense golden reference on every
// paper benchmark — byte-identical timelines and exact makespan/energy,
// with temperatures inside the documented 1e-6 K bound. The scheduler
// only ever compares thermal inquiries, so agreement here means the
// sparse oracle ranks candidates identically to the dense one.
func TestSolverBackendsPlatformParity(t *testing.T) {
	dense := testEngine(t)
	sparse, err := NewEngine(WithSolverBackend("sparse"))
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range []string{"Bm1", "Bm2", "Bm3", "Bm4"} {
		req := NewRequest(FlowPlatform, WithBenchmark(bm), WithGantt())
		want, err := dense.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s dense: %v", bm, err)
		}
		got, err := sparse.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s sparse: %v", bm, err)
		}
		assertResponsesAgree(t, bm, want, got)

		// A per-request override on the dense engine must land on the
		// same result as the sparse-default engine.
		over, err := dense.Run(context.Background(),
			NewRequest(FlowPlatform, WithBenchmark(bm), WithGantt(), WithSolver("sparse")))
		if err != nil {
			t.Fatalf("%s override: %v", bm, err)
		}
		if over.Gantt != got.Gantt || *over.Metrics != *got.Metrics {
			t.Errorf("%s: WithSolver override differs from a sparse-default engine", bm)
		}
	}
}

// Co-synthesis explores hundreds of candidate floorplans, each with its
// own thermal model — the stress test for backend-keyed model caching
// and for sparse/dense oracle agreement under search pressure.
func TestSolverBackendsCoSynthesisParity(t *testing.T) {
	if testing.Short() {
		t.Skip("co-synthesis parity is not short")
	}
	dense := testEngine(t)
	sparse, err := NewEngine(WithSolverBackend("sparse"))
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(FlowCoSynthesis, WithBenchmark("Bm1"), WithGantt())
	want, err := dense.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Floorplan != want.Floorplan {
		t.Errorf("co-synthesized floorplans differ:\ndense:\n%s\nsparse:\n%s", want.Floorplan, got.Floorplan)
	}
	assertResponsesAgree(t, "Bm1 cosynth", want, got)
}

func assertResponsesAgree(t *testing.T, label string, want, got *Response) {
	t.Helper()
	if got.Gantt != want.Gantt {
		t.Errorf("%s: schedules differ between dense and sparse backends:\ndense:\n%s\nsparse:\n%s",
			label, want.Gantt, got.Gantt)
	}
	w, g := want.Metrics, got.Metrics
	if g.Makespan != w.Makespan || g.Feasible != w.Feasible || g.Cost != w.Cost {
		t.Errorf("%s: schedule metrics differ: dense %+v, sparse %+v", label, *w, *g)
	}
	if math.Abs(g.MaxTemp-w.MaxTemp) > 1e-6 || math.Abs(g.AvgTemp-w.AvgTemp) > 1e-6 {
		t.Errorf("%s: temperatures beyond 1e-6 K: dense max %v avg %v, sparse max %v avg %v",
			label, w.MaxTemp, w.AvgTemp, g.MaxTemp, g.AvgTemp)
	}
	if math.Abs(g.TotalPower-w.TotalPower) > 1e-9 {
		t.Errorf("%s: total power differs: dense %v, sparse %v", label, w.TotalPower, g.TotalPower)
	}
}
