package thermalsched

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"thermalsched/internal/experiments"
	"thermalsched/internal/scenario"
	"thermalsched/internal/sched"
	"thermalsched/internal/stream"
)

// MaxCampaignScenarios caps CampaignSpec.Scenarios: every scenario is
// scheduled once per compared policy, so an unbounded count would let a
// single service request monopolize the process.
const MaxCampaignScenarios = 4096

// CampaignSpec parameterizes the FlowCampaign study: a policy
// comparison fanned across a family of generated scenarios. The zero
// value uses the documented defaults.
type CampaignSpec struct {
	// Scenarios is the number of scenarios to generate (default 8).
	Scenarios int `json:"scenarios,omitempty"`
	// Seed drives the campaign's scenario derivation: scenario i's size
	// and generation seed are drawn from this master seed, so the whole
	// campaign is reproducible from one number. Used verbatim — zero is
	// an ordinary seed.
	Seed int64 `json:"seed"`
	// Policies names the compared ASP variants (ParsePolicy syntax).
	// Default: heuristic3 (the paper's best power heuristic) vs
	// thermal.
	Policies []string `json:"policies,omitempty"`
	// MinTasks and MaxTasks bound the per-scenario task counts
	// (defaults 20 and 60). Scenario i draws uniformly from the range.
	MinTasks int `json:"minTasks,omitempty"`
	MaxTasks int `json:"maxTasks,omitempty"`
	// Template is the base scenario spec: every generated scenario
	// copies it and overrides Name, Seed and Graph.Tasks. A nil
	// template (or one with an empty Graph.Shape) additionally draws
	// each scenario's shape at random, widening structural coverage.
	Template *ScenarioSpec `json:"template,omitempty"`
	// Simulate, when set, runs every scenario × policy cell through the
	// closed-loop DTM co-simulator (FlowSimulate) instead of the static
	// platform flow, adding realized makespan/peak-temp/throttle
	// columns to the rows.
	Simulate *SimulateSpec `json:"simulate,omitempty"`
	// Stream, when set, switches the campaign to online mode: every
	// cell is a FlowStream dispatch of a generated arrival trace (the
	// template for per-scenario workloads — Name and Seed are overridden
	// per scenario) and Policies names online policies (fifo, random,
	// coolest, greedy, admit, zigzag; default fifo vs greedy). Mutually
	// exclusive with Simulate and Template.
	Stream *StreamSpec `json:"stream,omitempty"`
	// Controllers, when set, switches the comparison axis from
	// scheduling policies to closed-loop DTM controllers: every cell
	// runs the same scheduling policy (the single Policies entry;
	// default thermal) through the co-simulator with one of the named
	// controller kinds (toggle, pi, none, admit, zigzag), so the duels
	// read as reactive-vs-predictive thermal management at a fixed
	// schedule. Implies simulate mode (a nil Simulate spec defaults);
	// mutually exclusive with Stream — online campaigns duel controllers
	// by listing admit/zigzag directly in Policies.
	Controllers []string `json:"controllers,omitempty"`
}

func (c *CampaignSpec) withDefaults() CampaignSpec {
	out := CampaignSpec{}
	if c != nil {
		out = *c
	}
	if out.Scenarios == 0 {
		out.Scenarios = 8
	}
	if len(out.Controllers) > 0 {
		// A controller duel is inherently a simulate-mode campaign at a
		// fixed scheduling policy.
		if out.Simulate == nil {
			out.Simulate = &SimulateSpec{}
		}
		if len(out.Policies) == 0 {
			out.Policies = []string{sched.ThermalAware.String()}
		}
	}
	if len(out.Policies) == 0 {
		if out.Stream != nil {
			out.Policies = []string{stream.PolicyFIFO, stream.PolicyGreedy}
		} else {
			out.Policies = []string{sched.MinTaskEnergy.String(), sched.ThermalAware.String()}
		}
	}
	if out.MinTasks == 0 {
		out.MinTasks = 20
	}
	if out.MaxTasks == 0 {
		out.MaxTasks = 60
	}
	return out
}

// Validate reports the first problem with the campaign parameters.
func (c *CampaignSpec) Validate() error {
	n := c.withDefaults()
	if n.Scenarios < 0 {
		return fmt.Errorf("thermalsched: negative campaign scenario count %d", c.Scenarios)
	}
	if n.Scenarios > MaxCampaignScenarios {
		return fmt.Errorf("thermalsched: %d campaign scenarios exceed the limit %d",
			n.Scenarios, MaxCampaignScenarios)
	}
	seen := make(map[string]bool, len(n.Policies))
	for _, name := range n.Policies {
		var canonical string
		if n.Stream != nil {
			p, err := stream.ParsePolicy(name)
			if err != nil {
				return err
			}
			canonical = p
		} else {
			p, err := sched.ParsePolicy(name)
			if err != nil {
				return err
			}
			canonical = p.String()
		}
		if seen[canonical] {
			return fmt.Errorf("thermalsched: campaign policy %q listed twice", canonical)
		}
		seen[canonical] = true
	}
	if n.MinTasks < 1 || n.MaxTasks < n.MinTasks || n.MaxTasks > scenario.MaxTasks {
		return fmt.Errorf("thermalsched: campaign task range [%d, %d] outside [1, %d]",
			n.MinTasks, n.MaxTasks, scenario.MaxTasks)
	}
	if n.Template != nil {
		if err := n.Template.Validate(); err != nil {
			return err
		}
	}
	if s := n.Simulate; s != nil {
		if !validSimulateController(s.Controller) {
			return fmt.Errorf("thermalsched: unknown campaign simulate controller %q (want one of %v)",
				s.Controller, simulateControllers)
		}
	}
	if len(n.Controllers) > 0 {
		if n.Stream != nil {
			return fmt.Errorf("thermalsched: campaign controller duel excludes stream mode; list admit/zigzag in policies instead")
		}
		if len(n.Policies) != 1 {
			return fmt.Errorf("thermalsched: campaign controller duel needs exactly one scheduling policy, got %d", len(n.Policies))
		}
		seenCtl := make(map[string]bool, len(n.Controllers))
		for _, name := range n.Controllers {
			if name == "" || !validSimulateController(name) {
				return fmt.Errorf("thermalsched: unknown campaign controller %q (want one of %v)", name, simulateControllers)
			}
			if seenCtl[name] {
				return fmt.Errorf("thermalsched: campaign controller %q listed twice", name)
			}
			seenCtl[name] = true
		}
	}
	if n.Stream != nil {
		if n.Simulate != nil {
			return fmt.Errorf("thermalsched: campaign stream mode excludes simulate; remove one")
		}
		if n.Template != nil {
			return fmt.Errorf("thermalsched: campaign stream mode uses the stream spec as its template; remove template")
		}
		if err := n.Stream.validate(); err != nil {
			return err
		}
	}
	return nil
}

// policyNames returns the canonical names of the campaign's policies.
func (c CampaignSpec) policyNames() []string {
	out := make([]string, len(c.Policies))
	for i, name := range c.Policies {
		if c.Stream != nil {
			p, err := stream.ParsePolicy(name)
			if err != nil {
				out[i] = name // unreachable after Validate
				continue
			}
			out[i] = p
			continue
		}
		p, err := sched.ParsePolicy(name)
		if err != nil {
			out[i] = name // unreachable after Validate
			continue
		}
		out[i] = p.String()
	}
	return out
}

// scenarioSpecs derives the campaign's scenario specs deterministically
// from the master seed: sizes, shapes and per-scenario seeds all come
// from one seeded stream, so the same CampaignSpec always names the
// same scenario family.
func (c CampaignSpec) scenarioSpecs() []ScenarioSpec {
	rng := rand.New(rand.NewSource(c.Seed))
	base := ScenarioSpec{}
	if c.Template != nil {
		base = *c.Template
	}
	drawShape := base.Graph.Shape == ""
	out := make([]ScenarioSpec, c.Scenarios)
	for i := range out {
		s := base
		s.Name = fmt.Sprintf("c%03d", i)
		s.Graph.Tasks = c.MinTasks + rng.Intn(c.MaxTasks-c.MinTasks+1)
		if drawShape {
			if rng.Intn(2) == 0 {
				s.Graph.Shape = ScenarioShapeLayered
			} else {
				s.Graph.Shape = ScenarioShapeSeriesParallel
			}
		}
		s.Seed = rng.Int63()
		out[i] = s
	}
	return out
}

// streamSpecs derives the stream-mode workload family the same way
// scenarioSpecs derives scenarios: every workload copies the campaign's
// stream spec and overrides Name and Seed from the master seed's
// stream, so one number reproduces the whole family.
func (c CampaignSpec) streamSpecs() []StreamSpec {
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]StreamSpec, c.Scenarios)
	for i := range out {
		s := *c.Stream
		s.Name = fmt.Sprintf("c%03d", i)
		s.Seed = rng.Int63()
		out[i] = s
	}
	return out
}

// CampaignCell is one scenario × policy outcome. The static columns
// come from the platform flow's metrics; the Realized* columns are
// present in simulate mode only.
type CampaignCell struct {
	Policy      string  `json:"policy"`
	Feasible    bool    `json:"feasible"`
	Makespan    float64 `json:"makespan"`
	TotalPowerW float64 `json:"totalPowerW"`
	MaxTempC    float64 `json:"maxTempC"`
	AvgTempC    float64 `json:"avgTempC"`
	// Simulate- and stream-mode extras (zero otherwise).
	RealizedMakespan float64 `json:"realizedMakespan,omitempty"`
	PeakTempC        float64 `json:"peakTempC,omitempty"`
	ThrottleTime     float64 `json:"throttleTime,omitempty"`
	DeadlineMissRate float64 `json:"deadlineMissRate,omitempty"`
	// Price is the stream-mode price-of-onlineness ratio (replica mean
	// of realized makespan over the clairvoyant offline bound, ≥ 1).
	Price float64 `json:"price,omitempty"`
	// Error is set when this cell's run failed; the cell is then
	// excluded from every aggregate.
	Error string `json:"error,omitempty"`
}

// CampaignRow is one generated scenario with its per-policy cells (in
// the campaign's policy order).
type CampaignRow struct {
	Scenario    string         `json:"scenario"`
	Fingerprint string         `json:"fingerprint"`
	Seed        int64          `json:"seed"`
	Shape       string         `json:"shape"`
	Tasks       int            `json:"tasks"`
	Edges       int            `json:"edges"`
	PEs         int            `json:"pes"`
	Deadline    float64        `json:"deadline"`
	Cells       []CampaignCell `json:"cells"`
}

// CampaignPolicyStats aggregates one policy's outcomes over the
// scenarios where its run succeeded.
type CampaignPolicyStats struct {
	Policy   string `json:"policy"`
	Runs     int    `json:"runs"`
	Feasible int    `json:"feasible"`
	Makespan Stats  `json:"makespan"`
	MaxTempC Stats  `json:"maxTempC"`
	AvgTempC Stats  `json:"avgTempC"`
	PowerW   Stats  `json:"powerW"`
	// ThrottleTime aggregates the realized throttle time in simulate
	// mode (zero otherwise).
	ThrottleTime Stats `json:"throttleTime,omitempty"`
}

// CampaignDuel is the reference policy's win-rate against one opponent
// over the scenarios where both runs were feasible. Wins are strict
// (beyond experiments.WinEpsilon); scenarios inside the epsilon band
// count as ties.
type CampaignDuel struct {
	Opponent     string  `json:"opponent"`
	Compared     int     `json:"compared"`
	MaxTempWins  int     `json:"maxTempWins"`
	MaxTempTies  int     `json:"maxTempTies"`
	AvgTempWins  int     `json:"avgTempWins"`
	AvgTempTies  int     `json:"avgTempTies"`
	PowerWins    int     `json:"powerWins"`
	PowerTies    int     `json:"powerTies"`
	MeanMaxRedC  float64 `json:"meanMaxRedC"`
	MeanAvgRedC  float64 `json:"meanAvgRedC"`
	MeanPowerRed float64 `json:"meanPowerRedW"`
	// ThrottleWins counts scenarios where the reference throttled
	// strictly less — beyond experiments.WinEpsilon, like every other
	// duel column; ThrottleTies the scenarios inside the epsilon band
	// (simulate mode only).
	ThrottleWins int `json:"throttleWins,omitempty"`
	ThrottleTies int `json:"throttleTies,omitempty"`
	// MissRateWins counts scenarios where the reference missed strictly
	// fewer deadlines; MeanMissRed is the opponent-minus-reference mean
	// miss-rate delta (simulate and stream modes only).
	MissRateWins int     `json:"missRateWins,omitempty"`
	MissRateTies int     `json:"missRateTies,omitempty"`
	MeanMissRed  float64 `json:"meanMissRed,omitempty"`
	// PeakTempWins counts scenarios where the reference's realized peak
	// temperature ran strictly cooler; MeanPeakRedC the mean reduction.
	// These are the closed-loop counterpart of the static MaxTemp duel —
	// the columns a controller duel (reactive vs predictive) is read by
	// (simulate and stream modes only).
	PeakTempWins int     `json:"peakTempWins,omitempty"`
	PeakTempTies int     `json:"peakTempTies,omitempty"`
	MeanPeakRedC float64 `json:"meanPeakRedC,omitempty"`
}

// CampaignReport is the FlowCampaign payload: per-scenario rows plus
// per-policy percentile statistics and the reference policy's win
// rates against every other policy.
type CampaignReport struct {
	Scenarios int      `json:"scenarios"`
	Policies  []string `json:"policies"`
	// Reference is the policy the duels are measured for: "thermal"
	// when compared, otherwise the first policy.
	Reference string `json:"reference"`
	Simulated bool   `json:"simulated"`
	// Streamed marks an online (stream-mode) campaign: cells are online
	// dispatches, duels compare miss rates and thermal envelopes, and
	// feasibility (zero misses) is a metric, not a comparison gate.
	Streamed bool `json:"streamed,omitempty"`
	// ControllerAxis marks a controller duel: Policies carries controller
	// kinds, every cell shares one scheduling policy, and the realized
	// peak/miss-rate duel columns are the ones that differ.
	ControllerAxis bool `json:"controllerAxis,omitempty"`
	// Failed counts cells whose runs errored (excluded from
	// aggregates).
	Failed    int                   `json:"failed"`
	Rows      []CampaignRow         `json:"rows"`
	PerPolicy []CampaignPolicyStats `json:"perPolicy"`
	Duels     []CampaignDuel        `json:"duels"`
}

// runCampaignFlow generates the campaign's scenario family and fans the
// scenario × policy grid across the engine's RunBatch worker pool, then
// aggregates rows, per-policy percentiles and win rates.
func (e *Engine) runCampaignFlow(ctx context.Context, req *Request) (*Response, error) {
	spec := req.Campaign.withDefaults()
	policies := spec.policyNames()
	if spec.Stream != nil {
		return e.runStreamCampaign(ctx, req, spec, policies)
	}
	specs := spec.scenarioSpecs()

	// Generate every scenario up front (warming the fingerprint cache
	// the sub-requests resolve through) and capture each row's realized
	// properties now — resolving again after the batch would regenerate
	// whatever a large campaign already evicted from the cache.
	rows := make([]CampaignRow, len(specs))
	for i := range specs {
		sc, err := e.scenarioFor(specs[i])
		if err != nil {
			return nil, err
		}
		rows[i] = CampaignRow{
			Scenario:    sc.Graph.Name,
			Fingerprint: sc.Fingerprint,
			Seed:        sc.Spec.Seed,
			Shape:       sc.Spec.Graph.Shape,
			Tasks:       sc.Graph.NumTasks(),
			Edges:       sc.Graph.NumEdges(),
			PEs:         len(sc.PETypeNames),
			Deadline:    sc.Graph.Deadline,
		}
	}

	flow := FlowPlatform
	if spec.Simulate != nil {
		flow = FlowSimulate
	}
	// The grid's column axis is policies, or controllers in a controller
	// duel — there the scheduling policy is pinned to the single entry
	// and each column overrides the simulate spec's controller kind.
	cols := policies
	var simSpecs []*SimulateSpec
	if len(spec.Controllers) > 0 {
		cols = spec.Controllers
		simSpecs = make([]*SimulateSpec, len(cols))
		for j, ctrl := range cols {
			s := *spec.Simulate
			s.Controller = ctrl
			simSpecs[j] = &s
		}
	}
	subs := make([]Request, 0, len(specs)*len(cols))
	for i := range specs {
		for j := range cols {
			pol := policies[0]
			if simSpecs == nil {
				pol = cols[j]
			}
			sub := Request{Flow: flow, Scenario: &specs[i], Policy: pol, Solver: req.Solver}
			if simSpecs != nil {
				sub.Simulate = simSpecs[j]
			} else if spec.Simulate != nil {
				sub.Simulate = spec.Simulate
			}
			subs = append(subs, sub)
		}
	}
	resps, err := e.RunBatch(ctx, subs)
	if err != nil {
		return nil, err
	}

	report := &CampaignReport{
		Scenarios:      len(specs),
		Policies:       cols,
		Reference:      campaignReference(cols),
		Simulated:      spec.Simulate != nil,
		ControllerAxis: len(spec.Controllers) > 0,
	}
	if report.ControllerAxis {
		report.Reference = campaignControllerReference(cols)
	}
	for i := range specs {
		for j, col := range cols {
			rows[i].Cells = append(rows[i].Cells, campaignCell(col, resps[i*len(cols)+j]))
		}
	}
	report.Rows = rows
	aggregateCampaign(report)
	return &Response{Flow: FlowCampaign, Campaign: report}, nil
}

// runStreamCampaign is the online (stream-mode) campaign body: the same
// grid fan-out as the offline path, with workloads in place of
// scenarios and FlowStream dispatches in place of platform runs.
func (e *Engine) runStreamCampaign(ctx context.Context, req *Request, spec CampaignSpec, policies []string) (*Response, error) {
	specs := spec.streamSpecs()
	rows := make([]CampaignRow, len(specs))
	for i := range specs {
		wl, err := e.streamFor(specs[i])
		if err != nil {
			return nil, err
		}
		rows[i] = CampaignRow{
			Scenario:    wl.Spec.Name,
			Fingerprint: wl.Fingerprint,
			Seed:        wl.Spec.Seed,
			Shape:       "stream",
			Tasks:       len(wl.Jobs),
			PEs:         len(wl.PETypeNames),
			Deadline:    wl.Spec.Arrivals.Horizon,
		}
	}
	subs := make([]Request, 0, len(specs)*len(policies))
	for i := range specs {
		for _, pol := range policies {
			subs = append(subs, Request{Flow: FlowStream, Stream: &specs[i], Policy: pol, Solver: req.Solver})
		}
	}
	resps, err := e.RunBatch(ctx, subs)
	if err != nil {
		return nil, err
	}
	report := &CampaignReport{
		Scenarios: len(specs),
		Policies:  policies,
		Reference: campaignStreamReference(policies),
		Streamed:  true,
	}
	for i := range specs {
		for j, pol := range policies {
			rows[i].Cells = append(rows[i].Cells, campaignCell(pol, resps[i*len(policies)+j]))
		}
	}
	report.Rows = rows
	aggregateCampaign(report)
	return &Response{Flow: FlowCampaign, Campaign: report}, nil
}

// campaignReference picks the duel reference: thermal when present,
// otherwise the first policy.
func campaignReference(policies []string) string {
	for _, p := range policies {
		if p == sched.ThermalAware.String() {
			return p
		}
	}
	return policies[0]
}

// campaignStreamReference picks the stream-mode duel reference: the
// predictive admission policy when present (it is the one whose wins
// the duels are meant to witness), then thermal-greedy, then the first.
func campaignStreamReference(policies []string) string {
	for _, p := range policies {
		if p == stream.PolicyAdmit {
			return p
		}
	}
	for _, p := range policies {
		if p == stream.PolicyGreedy {
			return p
		}
	}
	return policies[0]
}

// campaignControllerReference picks the controller-duel reference:
// predictive admission when present, otherwise the first controller.
func campaignControllerReference(controllers []string) string {
	for _, c := range controllers {
		if c == "admit" {
			return c
		}
	}
	return controllers[0]
}

// campaignCell converts one sub-run's response into a row cell.
func campaignCell(policy string, resp *Response) CampaignCell {
	cell := CampaignCell{Policy: policy}
	if resp == nil {
		cell.Error = "missing response"
		return cell
	}
	if resp.Error != "" {
		cell.Error = resp.Error
		return cell
	}
	if m := resp.Metrics; m != nil {
		cell.Feasible = m.Feasible
		cell.Makespan = m.Makespan
		cell.TotalPowerW = m.TotalPower
		cell.MaxTempC = m.MaxTemp
		cell.AvgTempC = m.AvgTemp
	}
	if s := resp.Simulate; s != nil {
		cell.RealizedMakespan = s.Makespan.Mean
		cell.PeakTempC = s.PeakTempC.Mean
		cell.ThrottleTime = s.ThrottleTime.Mean
		cell.DeadlineMissRate = s.DeadlineMissRate
	}
	if s := resp.Stream; s != nil {
		// Online cells: feasibility means zero misses across replicas —
		// a metric for the stats, never a duel gate.
		cell.Feasible = s.MissRate.Mean == 0
		cell.Makespan = s.Makespan.Mean
		cell.MaxTempC = s.PeakTempC.Mean
		cell.AvgTempC = s.AvgTempC.Mean
		cell.RealizedMakespan = s.Makespan.Mean
		cell.PeakTempC = s.PeakTempC.Mean
		cell.DeadlineMissRate = s.MissRate.Mean
		cell.Price = s.Price.Mean
	}
	return cell
}

// tally classifies one opponent-minus-reference delta: a strict win for
// the reference (delta > epsilon), a tie (|delta| ≤ epsilon), or a
// loss — the sweep study's outcome rule.
func tally(delta float64, wins, ties *int) {
	switch {
	case delta > experiments.WinEpsilon:
		*wins++
	case delta >= -experiments.WinEpsilon:
		*ties++
	}
}

// aggregateCampaign fills the report's per-policy statistics and duels
// from its rows.
func aggregateCampaign(r *CampaignReport) {
	cellOf := func(row CampaignRow, policy string) *CampaignCell {
		for i := range row.Cells {
			if row.Cells[i].Policy == policy {
				return &row.Cells[i]
			}
		}
		return nil
	}
	for _, pol := range r.Policies {
		st := CampaignPolicyStats{Policy: pol}
		var mk, maxT, avgT, pw, thr []float64
		for _, row := range r.Rows {
			c := cellOf(row, pol)
			if c == nil || c.Error != "" {
				r.Failed++
				continue
			}
			st.Runs++
			if c.Feasible {
				st.Feasible++
			}
			mk = append(mk, c.Makespan)
			maxT = append(maxT, c.MaxTempC)
			avgT = append(avgT, c.AvgTempC)
			pw = append(pw, c.TotalPowerW)
			if r.Simulated {
				thr = append(thr, c.ThrottleTime)
			}
		}
		st.Makespan = statsOf(mk)
		st.MaxTempC = statsOf(maxT)
		st.AvgTempC = statsOf(avgT)
		st.PowerW = statsOf(pw)
		st.ThrottleTime = statsOf(thr)
		r.PerPolicy = append(r.PerPolicy, st)
	}
	for _, opp := range r.Policies {
		if opp == r.Reference {
			continue
		}
		duel := CampaignDuel{Opponent: opp}
		for _, row := range r.Rows {
			ref, oc := cellOf(row, r.Reference), cellOf(row, opp)
			if ref == nil || oc == nil || ref.Error != "" || oc.Error != "" {
				continue
			}
			// Offline cells compare only where both schedules met the
			// deadline; online cells always compare — the miss rate IS
			// one of the duel metrics there, not a validity gate.
			if !r.Streamed && (!ref.Feasible || !oc.Feasible) {
				continue
			}
			duel.Compared++
			dMax := oc.MaxTempC - ref.MaxTempC
			dAvg := oc.AvgTempC - ref.AvgTempC
			dPow := oc.TotalPowerW - ref.TotalPowerW
			duel.MeanMaxRedC += dMax
			duel.MeanAvgRedC += dAvg
			duel.MeanPowerRed += dPow
			tally(dMax, &duel.MaxTempWins, &duel.MaxTempTies)
			tally(dAvg, &duel.AvgTempWins, &duel.AvgTempTies)
			tally(dPow, &duel.PowerWins, &duel.PowerTies)
			if r.Simulated {
				tally(oc.ThrottleTime-ref.ThrottleTime, &duel.ThrottleWins, &duel.ThrottleTies)
			}
			if r.Simulated || r.Streamed {
				dMiss := oc.DeadlineMissRate - ref.DeadlineMissRate
				duel.MeanMissRed += dMiss
				tally(dMiss, &duel.MissRateWins, &duel.MissRateTies)
				dPeak := oc.PeakTempC - ref.PeakTempC
				duel.MeanPeakRedC += dPeak
				tally(dPeak, &duel.PeakTempWins, &duel.PeakTempTies)
			}
		}
		if duel.Compared > 0 {
			n := float64(duel.Compared)
			duel.MeanMaxRedC /= n
			duel.MeanAvgRedC /= n
			duel.MeanPowerRed /= n
			duel.MeanMissRed /= n
			duel.MeanPeakRedC /= n
		}
		r.Duels = append(r.Duels, duel)
	}
}

// String renders the campaign summary: per-policy percentiles and the
// reference policy's win rates.
func (r *CampaignReport) String() string {
	var b strings.Builder
	mode := "static platform runs"
	if r.Simulated {
		mode = "closed-loop co-simulations"
	}
	if r.Streamed {
		mode = "online stream dispatches"
	}
	fmt.Fprintf(&b, "Campaign: %d scenarios × %d policies (%s)\n",
		r.Scenarios, len(r.Policies), mode)
	if r.Failed > 0 {
		fmt.Fprintf(&b, "  %d cell(s) failed and are excluded from aggregates\n", r.Failed)
	}
	for _, st := range r.PerPolicy {
		if r.Streamed {
			// Online cells have no static power column; feasible here
			// means a miss-free dispatch, and makespan is the realized
			// one.
			fmt.Fprintf(&b, "  %-11s miss-free %d/%d  peak temp mean %.2f °C (p50 %.2f, p90 %.2f)  makespan mean %.1f\n",
				st.Policy, st.Feasible, st.Runs, st.MaxTempC.Mean, st.MaxTempC.P50, st.MaxTempC.P90, st.Makespan.Mean)
			continue
		}
		fmt.Fprintf(&b, "  %-11s feasible %d/%d  max temp mean %.2f °C (p50 %.2f, p90 %.2f)  power mean %.2f W\n",
			st.Policy, st.Feasible, st.Runs, st.MaxTempC.Mean, st.MaxTempC.P50, st.MaxTempC.P90, st.PowerW.Mean)
	}
	for _, d := range r.Duels {
		fmt.Fprintf(&b, "  %s vs %s on %d scenario(s): max temp wins %d (%d ties, mean red %.2f °C), avg temp wins %d (%d ties, mean red %.2f °C)\n",
			r.Reference, d.Opponent, d.Compared,
			d.MaxTempWins, d.MaxTempTies, d.MeanMaxRedC,
			d.AvgTempWins, d.AvgTempTies, d.MeanAvgRedC)
		if r.Simulated {
			fmt.Fprintf(&b, "    throttles less on %d/%d (%d ties)\n", d.ThrottleWins, d.Compared, d.ThrottleTies)
		}
		if r.Simulated || r.Streamed {
			fmt.Fprintf(&b, "    misses fewer deadlines on %d/%d (%d ties, mean red %.3f)\n",
				d.MissRateWins, d.Compared, d.MissRateTies, d.MeanMissRed)
			fmt.Fprintf(&b, "    realized peak cooler on %d/%d (%d ties, mean red %.2f °C)\n",
				d.PeakTempWins, d.Compared, d.PeakTempTies, d.MeanPeakRedC)
		}
	}
	return b.String()
}
