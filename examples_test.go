package thermalsched

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end (go run),
// asserting each exits cleanly and prints its expected marker. Skipped
// in -short mode: each run re-executes the flows.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir    string
		marker string
	}{
		{"./examples/quickstart", "thermal"},
		{"./examples/platform_design", "Platform-based design flow"},
		{"./examples/cosynthesis", "architecture"},
		{"./examples/thermal_exploration", "leakage feedback"},
		{"./examples/runtime_dtm", "Closed-loop DTM comparison"},
		{"./examples/campaign", "fingerprint matches the campaign row"},
		{"./examples/stream", "price of onlineness"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.marker) {
				t.Errorf("%s output missing %q:\n%s", tc.dir, tc.marker, out)
			}
		})
	}
}
