module thermalsched

go 1.24
