package thermalsched

import (
	"fmt"
	"strings"
	"sync"

	"thermalsched/internal/scenario"
)

// Synthetic-scenario types. A ScenarioSpec describes a seeded random
// workload — task graph plus heterogeneous platform — that any
// graph-consuming flow can run instead of a paper benchmark; see
// Request.Scenario and FlowGenerate.
type (
	// ScenarioSpec is the JSON-serializable description of one
	// synthetic scenario. The zero value (plus a seed) is a valid spec;
	// unset fields take documented defaults. Seeds are used verbatim —
	// zero is an ordinary seed, never rewritten.
	ScenarioSpec = scenario.Spec
	// ScenarioGraphParams parameterizes the generated task graph.
	ScenarioGraphParams = scenario.GraphParams
	// ScenarioPlatformParams parameterizes the generated platform.
	ScenarioPlatformParams = scenario.PlatformParams
	// Scenario is a fully generated workload: graph, library, platform.
	Scenario = scenario.Scenario
	// ScenarioSummary reports a generated scenario's realized stats.
	ScenarioSummary = scenario.Summary
)

// Scenario graph shapes and platform layouts.
const (
	ScenarioShapeLayered        = scenario.ShapeLayered
	ScenarioShapeSeriesParallel = scenario.ShapeSeriesParallel
	ScenarioLayoutGrid          = scenario.LayoutGrid
	ScenarioLayoutRow           = scenario.LayoutRow
)

// GenerateScenario builds the scenario described by the spec. It is
// the typed counterpart of Run with FlowGenerate; the same spec always
// generates an identical scenario.
func GenerateScenario(spec ScenarioSpec) (*Scenario, error) {
	return scenario.Generate(spec)
}

// ScenarioReport is the FlowGenerate payload: the generated scenario's
// summary statistics plus its canonical serializations, ready to be
// saved or shipped back through any input path (TG parses with the .tg
// reader, Lib with the .lib reader, Graph feeds Request.Graph).
type ScenarioReport struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	ScenarioSummary
	// TG is the task graph in the repository's .tg text format.
	TG string `json:"tg"`
	// Lib is the technology library in the .lib text format.
	Lib string `json:"lib"`
	// Graph is the task graph as an inline request spec.
	Graph *GraphSpec `json:"graphSpec"`
}

// scenarioReport serializes a generated scenario into the response
// payload.
func scenarioReport(sc *Scenario) (*ScenarioReport, error) {
	sum, err := sc.Summarize()
	if err != nil {
		return nil, err
	}
	var tg, lib strings.Builder
	if err := sc.Graph.Write(&tg); err != nil {
		return nil, err
	}
	if err := sc.Lib.Write(&lib); err != nil {
		return nil, err
	}
	return &ScenarioReport{
		Name:            sc.Graph.Name,
		Fingerprint:     sc.Fingerprint,
		ScenarioSummary: sum,
		TG:              tg.String(),
		Lib:             lib.String(),
		Graph:           GraphSpecOf(sc.Graph),
	}, nil
}

// DefaultScenarioCacheSize bounds the Engine's generated-scenario
// cache. A campaign touches each scenario once per compared policy, so
// the cache only needs to hold a campaign's working set.
const DefaultScenarioCacheSize = 128

// fpCache memoizes fingerprint-keyed generated artifacts (scenarios,
// stream workloads). The cached values are immutable once generated
// (scheduling never mutates its input graph and libraries are
// read-only), so one cached instance can serve concurrent workers.
type fpCache[V any] struct {
	mu     sync.Mutex
	cap    int
	byFP   map[string]V
	hits   uint64
	misses uint64
}

func newFPCache[V any](capacity int) *fpCache[V] {
	return &fpCache[V]{cap: capacity, byFP: make(map[string]V)}
}

// get returns the cached value for a fingerprint, if present.
func (c *fpCache[V]) get(fp string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.byFP[fp]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// put inserts a value, evicting an arbitrary entry when full (the
// access pattern is a campaign sweeping its scenario set in order, so
// recency tracking would buy nothing).
func (c *fpCache[V]) put(fp string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byFP[fp]; !ok && len(c.byFP) >= c.cap {
		//thermalvet:allow mapiter(eviction victim choice affects only cache hit rates, never results: entries are keyed by fingerprint and regeneration is deterministic)
		for k := range c.byFP {
			delete(c.byFP, k)
			break
		}
	}
	c.byFP[fp] = v
}

func (c *fpCache[V]) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.byFP)
}

// scenarioFor returns the (possibly cached) scenario for a spec.
func (e *Engine) scenarioFor(spec ScenarioSpec) (*Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fp := spec.Fingerprint()
	if sc, ok := e.scenarios.get(fp); ok {
		return sc, nil
	}
	sc, err := scenario.Generate(spec)
	if err != nil {
		return nil, err
	}
	e.scenarios.put(fp, sc)
	return sc, nil
}

// ScenarioCacheStats reports the generated-scenario cache's hit/miss
// counters and current size, for observability and tests.
func (e *Engine) ScenarioCacheStats() (hits, misses uint64, size int) {
	return e.scenarios.stats()
}

// runGenerateFlow materializes the requested scenario and serializes it
// into the response.
func (e *Engine) runGenerateFlow(req *Request) (*Response, error) {
	if req.Scenario == nil { // unreachable after Validate
		return nil, fmt.Errorf("thermalsched: generate request missing scenario spec")
	}
	sc, err := e.scenarioFor(*req.Scenario)
	if err != nil {
		return nil, err
	}
	report, err := scenarioReport(sc)
	if err != nil {
		return nil, err
	}
	return &Response{
		Flow:        FlowGenerate,
		Graph:       sc.Graph.Name,
		Fingerprint: sc.Fingerprint,
		Scenario:    report,
	}, nil
}
