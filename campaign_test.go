package thermalsched

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"thermalsched/internal/experiments"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func TestGenerateFlow(t *testing.T) {
	e := testEngine(t)
	spec := ScenarioSpec{
		Seed: 5,
		Graph: ScenarioGraphParams{
			Tasks: 30, BranchDensity: 0.5,
		},
		Platform: ScenarioPlatformParams{PEs: 5, MinSpeed: 0.8, MaxSpeed: 1.8},
	}
	resp, err := e.Run(context.Background(), NewRequest(FlowGenerate, WithScenario(spec)))
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Scenario
	if r == nil {
		t.Fatal("generate response missing scenario report")
	}
	if r.Fingerprint == "" || resp.Fingerprint != r.Fingerprint {
		t.Errorf("fingerprint not stamped: response %q, report %q", resp.Fingerprint, r.Fingerprint)
	}
	if r.Tasks != 30 || r.PEs != 5 {
		t.Errorf("report says %d tasks on %d PEs, want 30 on 5", r.Tasks, r.PEs)
	}

	// The serialized forms must parse back with the repository's own
	// readers, to exactly the reported shapes.
	g, err := taskgraph.ReadGraph(strings.NewReader(r.TG))
	if err != nil {
		t.Fatalf("reparsing TG: %v", err)
	}
	if g.NumTasks() != r.Tasks || g.NumEdges() != r.Edges {
		t.Errorf("reparsed graph %d/%d, report %d/%d", g.NumTasks(), g.NumEdges(), r.Tasks, r.Edges)
	}
	lib, err := techlib.ReadLibrary(strings.NewReader(r.Lib))
	if err != nil {
		t.Fatalf("reparsing Lib: %v", err)
	}
	if lib.NumPETypes() != r.PEs {
		t.Errorf("reparsed library has %d PE types, want %d", lib.NumPETypes(), r.PEs)
	}

	// The inline GraphSpec must be feedable straight back into a
	// platform request... except generated graphs need their generated
	// platform; instead run the same scenario through the platform flow.
	plat, err := e.Run(context.Background(), NewRequest(FlowPlatform, WithScenario(spec)))
	if err != nil {
		t.Fatal(err)
	}
	if plat.Fingerprint != r.Fingerprint {
		t.Errorf("platform run fingerprint %q != generate fingerprint %q", plat.Fingerprint, r.Fingerprint)
	}
	if plat.Metrics == nil || plat.Graph != r.Name {
		t.Errorf("platform run on scenario missing metrics or wrong graph %q", plat.Graph)
	}
	if len(plat.Architecture) != 5 {
		t.Errorf("platform run used %d PEs, want the scenario's 5", len(plat.Architecture))
	}
}

func TestScenarioCacheReuse(t *testing.T) {
	e := testEngine(t)
	spec := ScenarioSpec{Seed: 9, Graph: ScenarioGraphParams{Tasks: 25}}
	ctx := context.Background()
	for _, flow := range []FlowKind{FlowGenerate, FlowPlatform, FlowPlatform} {
		if _, err := e.Run(ctx, NewRequest(flow, WithScenario(spec))); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := e.ScenarioCacheStats()
	if misses != 1 || hits < 2 || size != 1 {
		t.Errorf("scenario cache hits=%d misses=%d size=%d, want >=2/1/1", hits, misses, size)
	}
}

func TestScenarioRunsThroughEveryGraphFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("cosynthesis on generated scenarios skipped in -short mode")
	}
	e := testEngine(t)
	spec := ScenarioSpec{
		Seed:     21,
		Graph:    ScenarioGraphParams{Tasks: 20},
		Platform: ScenarioPlatformParams{PEs: 4, MinSpeed: 0.7, MaxSpeed: 1.7, Layout: ScenarioLayoutRow},
	}
	ctx := context.Background()
	for _, tc := range []struct {
		flow FlowKind
		opts []RequestOption
	}{
		{FlowPlatform, nil},
		{FlowCoSynthesis, nil},
		{FlowDTM, nil},
		{FlowSimulate, []RequestOption{WithSimulate(SimulateSpec{Replicas: 2, Seed: 1})}},
	} {
		opts := append([]RequestOption{WithScenario(spec)}, tc.opts...)
		resp, err := e.Run(ctx, NewRequest(tc.flow, opts...))
		if err != nil {
			t.Errorf("%s on scenario: %v", tc.flow, err)
			continue
		}
		if resp.Fingerprint == "" {
			t.Errorf("%s on scenario: fingerprint not stamped", tc.flow)
		}
		if resp.Metrics == nil {
			t.Errorf("%s on scenario: missing metrics", tc.flow)
		}
	}
}

func TestCampaignFlowDeterministicAndAggregated(t *testing.T) {
	e := testEngine(t)
	req := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 6,
		Seed:      4,
		MinTasks:  20,
		MaxTasks:  40,
	}))
	ctx := context.Background()
	run := func() string {
		resp, err := e.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		resp.ElapsedMS = 0
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	first := run()
	if second := run(); first != second {
		t.Errorf("campaign not deterministic:\n%s\n---\n%s", first, second)
	}

	var resp Response
	if err := json.Unmarshal([]byte(first), &resp); err != nil {
		t.Fatal(err)
	}
	r := resp.Campaign
	if r == nil {
		t.Fatal("campaign response missing report")
	}
	if r.Scenarios != 6 || len(r.Rows) != 6 {
		t.Fatalf("report covers %d scenarios in %d rows, want 6", r.Scenarios, len(r.Rows))
	}
	if r.Reference != "thermal" {
		t.Errorf("reference %q, want thermal", r.Reference)
	}
	if len(r.Duels) != 1 || r.Duels[0].Opponent != "heuristic3" {
		t.Fatalf("want one duel against heuristic3, got %+v", r.Duels)
	}
	if len(r.PerPolicy) != 2 {
		t.Fatalf("want 2 per-policy stats, got %d", len(r.PerPolicy))
	}
	for _, st := range r.PerPolicy {
		if st.Runs != 6 {
			t.Errorf("policy %s ran %d scenarios, want 6", st.Policy, st.Runs)
		}
		if !(st.MaxTempC.Mean > 0) || st.MaxTempC.Min > st.MaxTempC.Max {
			t.Errorf("policy %s has degenerate temp stats %+v", st.Policy, st.MaxTempC)
		}
	}
	for _, row := range r.Rows {
		if row.Tasks < 20 || row.Tasks > 40 {
			t.Errorf("row %s has %d tasks outside [20, 40]", row.Scenario, row.Tasks)
		}
		if row.Fingerprint == "" || row.Edges == 0 || row.Deadline == 0 {
			t.Errorf("row %s incomplete: %+v", row.Scenario, row)
		}
		if len(row.Cells) != 2 {
			t.Errorf("row %s has %d cells, want 2", row.Scenario, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.Error != "" {
				t.Errorf("row %s cell %s failed: %s", row.Scenario, c.Policy, c.Error)
			}
		}
	}
	if d := r.Duels[0]; d.Compared > 0 {
		if d.MaxTempWins+d.MaxTempTies > d.Compared {
			t.Errorf("duel wins %d + ties %d exceed compared %d", d.MaxTempWins, d.MaxTempTies, d.Compared)
		}
	}
	if s := r.String(); !strings.Contains(s, "Campaign: 6 scenarios") {
		t.Errorf("report rendering unexpected:\n%s", s)
	}
}

// The acceptance-scale campaign: ≥50 scenarios spanning the full task
// range, deterministic under a fixed seed, with win rates and
// percentiles present.
func TestCampaignAcceptanceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("50-scenario campaign skipped in -short mode")
	}
	e := testEngine(t)
	req := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 50,
		Seed:      2005,
		MinTasks:  20,
		MaxTasks:  200,
	}))
	ctx := context.Background()
	resp, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Campaign
	if r == nil || len(r.Rows) != 50 {
		t.Fatalf("want 50 rows, got %+v", r)
	}
	if r.Failed != 0 {
		t.Errorf("%d cells failed", r.Failed)
	}
	sawSmall, sawLarge := false, false
	shapes := map[string]int{}
	for _, row := range r.Rows {
		if row.Tasks < 20 || row.Tasks > 200 {
			t.Errorf("row %s has %d tasks outside [20, 200]", row.Scenario, row.Tasks)
		}
		if row.Tasks < 80 {
			sawSmall = true
		}
		if row.Tasks > 140 {
			sawLarge = true
		}
		shapes[row.Shape]++
	}
	if !sawSmall || !sawLarge {
		t.Errorf("task sizes did not span the range (small=%v large=%v)", sawSmall, sawLarge)
	}
	if len(shapes) < 2 {
		t.Errorf("campaign drew only shapes %v, want both", shapes)
	}
	if len(r.Duels) != 1 || r.Duels[0].Compared == 0 {
		t.Fatalf("duel missing or empty: %+v", r.Duels)
	}
	// Determinism at scale: rerun and compare the serialized report.
	again, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(resp.Campaign)
	b, _ := json.Marshal(again.Campaign)
	if string(a) != string(b) {
		t.Error("50-scenario campaign is not deterministic")
	}
}

func TestCampaignSimulateMode(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulating campaign skipped in -short mode")
	}
	e := testEngine(t)
	resp, err := e.Run(context.Background(), NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 3,
		Seed:      8,
		MinTasks:  20,
		MaxTasks:  30,
		Simulate:  &SimulateSpec{Seed: 1, MinFactor: 0.9},
	})))
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Campaign
	if r == nil || !r.Simulated {
		t.Fatal("simulate-mode campaign not marked simulated")
	}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if c.Error != "" {
				t.Fatalf("cell %s/%s failed: %s", row.Scenario, c.Policy, c.Error)
			}
			if !(c.RealizedMakespan > 0) || !(c.PeakTempC > 0) {
				t.Errorf("cell %s/%s missing realized columns: %+v", row.Scenario, c.Policy, c)
			}
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	bad := []Request{
		NewRequest(FlowCampaign, WithBenchmark("Bm1")),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Scenarios: MaxCampaignScenarios + 1})),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Policies: []string{"nope"}})),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Policies: []string{"h3", "heuristic3"}})),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{MinTasks: 50, MaxTasks: 20})),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{MinTasks: 999999, MaxTasks: 999999})),
		NewRequest(FlowGenerate),
		NewRequest(FlowGenerate, WithBenchmark("Bm1"), WithScenario(ScenarioSpec{})),
		NewRequest(FlowPlatform, WithBenchmark("Bm1"), WithScenario(ScenarioSpec{})),
		NewRequest(FlowPlatform, WithCampaign(CampaignSpec{})),
		NewRequest(FlowSweep, WithScenario(ScenarioSpec{})),
		NewRequest(FlowPlatform, WithScenario(ScenarioSpec{Graph: ScenarioGraphParams{Tasks: -2}})),
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("bad request %d validated: %+v", i, req)
		}
	}
	good := []Request{
		NewRequest(FlowCampaign),
		NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Policies: []string{"baseline", "h3", "thermal"}})),
		NewRequest(FlowGenerate, WithScenario(ScenarioSpec{})),
		NewRequest(FlowSimulate, WithScenario(ScenarioSpec{}), WithSimulate(SimulateSpec{Replicas: 2})),
	}
	for i, req := range good {
		if err := req.Validate(); err != nil {
			t.Errorf("good request %d rejected: %v", i, err)
		}
	}
}

// The throttle duel follows the same strict-win-plus-ties treatment as
// the temperature and power duels: deltas inside ±WinEpsilon are ties,
// not wins (a raw < used to count the reference as non-winning on
// exact ties and sub-epsilon noise as wins).
func TestCampaignThrottleDuelEpsilonAndTies(t *testing.T) {
	eps := experiments.WinEpsilon
	rows := []CampaignRow{
		// Exact tie: identical throttle times must count as a tie.
		{Scenario: "tie", Cells: []CampaignCell{
			{Policy: "thermal", Feasible: true, ThrottleTime: 10},
			{Policy: "heuristic3", Feasible: true, ThrottleTime: 10},
		}},
		// Sub-epsilon noise in either direction: also a tie, not a win.
		{Scenario: "noise+", Cells: []CampaignCell{
			{Policy: "thermal", Feasible: true, ThrottleTime: 10},
			{Policy: "heuristic3", Feasible: true, ThrottleTime: 10 + eps/2},
		}},
		{Scenario: "noise-", Cells: []CampaignCell{
			{Policy: "thermal", Feasible: true, ThrottleTime: 10},
			{Policy: "heuristic3", Feasible: true, ThrottleTime: 10 - eps/2},
		}},
		// Genuine win: the reference throttles strictly less.
		{Scenario: "win", Cells: []CampaignCell{
			{Policy: "thermal", Feasible: true, ThrottleTime: 5},
			{Policy: "heuristic3", Feasible: true, ThrottleTime: 9},
		}},
		// Genuine loss: neither a win nor a tie.
		{Scenario: "loss", Cells: []CampaignCell{
			{Policy: "thermal", Feasible: true, ThrottleTime: 9},
			{Policy: "heuristic3", Feasible: true, ThrottleTime: 5},
		}},
	}
	r := &CampaignReport{
		Scenarios: len(rows),
		Policies:  []string{"thermal", "heuristic3"},
		Reference: "thermal",
		Simulated: true,
		Rows:      rows,
	}
	aggregateCampaign(r)
	if len(r.Duels) != 1 {
		t.Fatalf("want 1 duel, got %d", len(r.Duels))
	}
	d := r.Duels[0]
	if d.Compared != 5 {
		t.Errorf("Compared = %d, want 5", d.Compared)
	}
	if d.ThrottleWins != 1 {
		t.Errorf("ThrottleWins = %d, want 1 (strict wins only)", d.ThrottleWins)
	}
	if d.ThrottleTies != 3 {
		t.Errorf("ThrottleTies = %d, want 3 (exact tie + sub-epsilon noise both ways)", d.ThrottleTies)
	}
	if !strings.Contains(r.String(), "3 ties") {
		t.Errorf("summary does not report throttle ties:\n%s", r.String())
	}
}
