package thermalsched_test

import (
	"context"
	"testing"

	"thermalsched"
)

// admissionDuelFamilies are the four scenario families the predictive
// admission controller is measured on: disjoint-seed batches spanning
// the graph-size axis, run hot enough (TimeScale 0.05 against the
// default 80 °C toggle trigger) that reactive throttling visibly
// inflates realized makespans past the deadline. Every family runs the
// same shared SimulateSpec — toggle with its platform defaults, admit
// with its ladder one band below the trigger — so the duel measures
// the control strategy, not per-family knob tuning.
var admissionDuelFamilies = []struct {
	name     string
	seed     int64
	minTasks int
	maxTasks int
	shape    string // "" draws a mix of shapes per scenario
}{
	{"compact", 11, 14, 24, thermalsched.ScenarioShapeLayered},
	{"standard-a", 2, 20, 40, ""},
	{"standard-b", 3, 20, 40, ""},
	{"wide", 10, 36, 50, thermalsched.ScenarioShapeLayered},
}

// admissionDuelSpec is the shared controller configuration of the
// duel: the reactive baseline keeps its defaults (80 °C trigger, 2 °C
// hysteresis, 0.5 throttle); the predictive controller forecasts with
// the influence oracle and refuses starts that would cross its
// serious threshold, with a graduated safety net behind it.
func admissionDuelSpec() *thermalsched.SimulateSpec {
	return &thermalsched.SimulateSpec{
		Replicas:  4,
		MinFactor: 0.7,
		TimeScale: 0.05,
		TriggerC:  80,
		FairC:     70, SeriousC: 78, CriticalC: 86,
		SeriousScale: 0.7, CriticalScale: 0.4,
		RetryAfter: 2,
	}
}

// The tentpole acceptance claim: predictive admission control beats
// the reactive toggle baseline on deadline-miss rate at equal-or-lower
// realized peak temperature on at least 3 of 4 scenario families, and
// never loses a miss-rate duel on any family. The campaign flow is
// deterministic end to end (seeded scenarios, seeded replicas,
// parallelism-independent accumulation), so the asserted margins are
// exact reruns, not statistical luck.
func TestAdmissionBeatsToggleAcrossScenarioFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("admission duel campaign suite skipped in -short mode")
	}
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}

	familiesWon := 0
	for _, fam := range admissionDuelFamilies {
		req := thermalsched.NewRequest(thermalsched.FlowCampaign,
			thermalsched.WithCampaign(thermalsched.CampaignSpec{
				Scenarios: 6,
				Seed:      fam.seed,
				MinTasks:  fam.minTasks,
				MaxTasks:  fam.maxTasks,
				Template: &thermalsched.ScenarioSpec{
					Graph: thermalsched.ScenarioGraphParams{
						Shape: fam.shape, Tightness: 1.1,
					},
					Platform: thermalsched.ScenarioPlatformParams{PEs: 6},
				},
				Controllers: []string{"toggle", "admit"},
				Simulate:    admissionDuelSpec(),
			}))
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("family %s: %v", fam.name, err)
		}
		r := resp.Campaign
		if r == nil {
			t.Fatalf("family %s: no campaign report", fam.name)
		}
		if r.Reference != "admit" {
			t.Fatalf("family %s: duel reference %q, want admit", fam.name, r.Reference)
		}
		var duel *thermalsched.CampaignDuel
		for i := range r.Duels {
			if r.Duels[i].Opponent == "toggle" {
				duel = &r.Duels[i]
			}
		}
		if duel == nil {
			t.Fatalf("family %s: no toggle duel in report", fam.name)
		}
		if duel.Compared != 6 {
			t.Fatalf("family %s: %d of 6 scenarios compared — a controller run failed",
				fam.name, duel.Compared)
		}

		missLosses := duel.Compared - duel.MissRateWins - duel.MissRateTies
		if missLosses > 0 {
			t.Errorf("family %s: admit lost %d miss-rate duels to toggle", fam.name, missLosses)
		}
		wonMiss := duel.MissRateWins > 0 && duel.MeanMissRed > 0
		wonPeak := duel.MeanPeakRedC >= 0
		t.Logf("family %-10s missWins %d/%d meanMissRed %+.3f peakWins %d meanPeakRed %+.2f°C",
			fam.name, duel.MissRateWins, duel.Compared, duel.MeanMissRed,
			duel.PeakTempWins, duel.MeanPeakRedC)
		if wonMiss && wonPeak {
			familiesWon++
		}
	}
	if familiesWon < 3 {
		t.Errorf("admit beat toggle on miss rate at equal-or-lower peak on %d of %d families, want >= 3",
			familiesWon, len(admissionDuelFamilies))
	}
}
