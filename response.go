package thermalsched

import (
	"math"
	"sort"
	"strings"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
)

// PEInfo describes one processing element of a response's architecture.
type PEInfo struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	AreaMM2 float64 `json:"areaMM2"`
	Cost    float64 `json:"cost"`
}

// PEStat is one processing element's steady-state operating point.
type PEStat struct {
	Name   string  `json:"name"`
	PowerW float64 `json:"powerW"`
	TempC  float64 `json:"tempC"`
}

// DTMReport summarizes a FlowDTM transient run.
type DTMReport struct {
	Controller        string  `json:"controller"`
	Steps             int     `json:"steps"`
	PeakTempC         float64 `json:"peakTempC"`
	ThrottledFraction float64 `json:"throttledFraction"`
	EnergyDelivered   float64 `json:"energyDelivered"`
	EnergyRequested   float64 `json:"energyRequested"`
	// Slowdown is the fraction of requested energy denied by
	// throttling — a proxy for the execution-time penalty of DTM.
	Slowdown float64 `json:"slowdown"`
}

// Stats summarizes one metric across Monte-Carlo replicas. Percentiles
// use the nearest-rank method over the sorted replica values.
type Stats struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	Max  float64 `json:"max"`
}

// statsOf computes replica statistics. vals is sorted in place.
func statsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(vals)))) - 1
		if i < 0 {
			i = 0
		}
		return vals[i]
	}
	return Stats{
		Mean: sum / float64(len(vals)),
		Min:  vals[0],
		P50:  rank(0.50),
		P90:  rank(0.90),
		Max:  vals[len(vals)-1],
	}
}

// SimulateReport summarizes a FlowSimulate closed-loop co-simulation
// over its Monte-Carlo replicas.
type SimulateReport struct {
	Controller string `json:"controller"`
	Replicas   int    `json:"replicas"`
	// StaticMakespan is the WCET schedule's makespan; Deadline the task
	// graph's deadline, both in schedule time units.
	StaticMakespan float64 `json:"staticMakespan"`
	Deadline       float64 `json:"deadline"`
	// Makespan, PeakTempC and ThrottleTime aggregate the replicas'
	// realized makespans (schedule units), hottest observed block
	// temperatures (°C) and total busy time spent throttled (schedule
	// units, summed over PEs).
	Makespan     Stats `json:"makespan"`
	PeakTempC    Stats `json:"peakTempC"`
	ThrottleTime Stats `json:"throttleTime"`
	// DeadlineMissRate is the fraction of replicas whose realized
	// makespan exceeded the deadline.
	DeadlineMissRate float64 `json:"deadlineMissRate"`
	// MeanSteps is the average number of co-simulation steps per replica.
	MeanSteps float64 `json:"meanSteps"`
	// MeanEnergy is the average delivered energy per replica.
	MeanEnergy float64 `json:"meanEnergy"`
	// MeanAdmissionDenials is the average number of dispatch attempts
	// the thermal supervisor refused per replica. Omitted for the
	// reactive controllers (toggle, pi, none), which never deny.
	MeanAdmissionDenials float64 `json:"meanAdmissionDenials,omitempty"`
}

// Response is the JSON-serializable outcome of one Engine request. The
// CLI's -json mode and the thermschedd service emit exactly this schema.
type Response struct {
	// Flow and Policy echo the resolved request; Graph names the input
	// task graph.
	Flow   FlowKind `json:"flow"`
	Graph  string   `json:"graph,omitempty"`
	Policy string   `json:"policy,omitempty"`
	// Fingerprint identifies the generated scenario a scenario-driven
	// run executed on (the cache key clients can reuse).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Metrics are the paper's table columns (platform, cosynthesis and
	// dtm flows).
	Metrics *FlowMetrics `json:"metrics,omitempty"`
	// Architecture lists the scheduled PEs; PerPE their steady-state
	// power and temperature.
	Architecture []PEInfo `json:"architecture,omitempty"`
	PerPE        []PEStat `json:"perPE,omitempty"`
	// Floorplan is the layout in HotSpot .flp text form (cosynthesis).
	Floorplan string `json:"floorplan,omitempty"`
	// Gantt is the per-PE timeline, present when the request asked for it.
	Gantt string `json:"gantt,omitempty"`
	// Sweep carries the FlowSweep aggregate.
	Sweep *SweepResult `json:"sweep,omitempty"`
	// DTM carries the FlowDTM transient summary.
	DTM *DTMReport `json:"dtm,omitempty"`
	// Simulate carries the FlowSimulate closed-loop summary.
	Simulate *SimulateReport `json:"simulate,omitempty"`
	// Scenario carries the FlowGenerate payload: the generated
	// scenario's stats and serialized forms.
	Scenario *ScenarioReport `json:"scenario,omitempty"`
	// Campaign carries the FlowCampaign aggregate.
	Campaign *CampaignReport `json:"campaign,omitempty"`
	// Stream carries the FlowStream online-dispatch summary.
	Stream *StreamReport `json:"stream,omitempty"`
	// ElapsedMS is the server-side wall-clock cost of the run.
	ElapsedMS float64 `json:"elapsedMs"`
	// Error is set instead of the payload fields when a batch entry or
	// service call fails; Engine.Run itself returns Go errors.
	Error string `json:"error,omitempty"`
}

// flowResponse assembles the shared parts of a platform/cosynthesis/dtm
// response from a flow result.
func flowResponse(flow FlowKind, policy Policy, res *cosynth.Result, includeGantt, includePlan bool) (*Response, error) {
	resp := &Response{
		Flow:    flow,
		Graph:   res.Schedule.Graph.Name,
		Policy:  policy.String(),
		Metrics: &res.Metrics,
	}
	lib := res.Schedule.Lib
	for _, pe := range res.Arch.PEs {
		t := lib.PEType(pe.Type)
		resp.Architecture = append(resp.Architecture, PEInfo{
			Name: pe.Name, Type: t.Name, AreaMM2: t.Area * 1e6, Cost: t.Cost,
		})
	}
	pow, err := res.Schedule.PEAveragePower(res.Schedule.Graph.Deadline)
	if err != nil {
		return nil, err
	}
	temps, err := res.Oracle.Temps(pow)
	if err != nil {
		return nil, err
	}
	for i, name := range res.Arch.PENames() {
		t, _ := temps.Of(name)
		resp.PerPE = append(resp.PerPE, PEStat{Name: name, PowerW: pow[i], TempC: t})
	}
	if includePlan {
		var b strings.Builder
		if err := res.Plan.Write(&b); err != nil {
			return nil, err
		}
		resp.Floorplan = b.String()
	}
	if includeGantt {
		resp.Gantt = res.Schedule.Gantt()
	}
	return resp, nil
}

// dtmReport converts a controller run into the response summary.
func dtmReport(controller string, r *dtm.RunResult) *DTMReport {
	return &DTMReport{
		Controller:        controller,
		Steps:             r.Steps,
		PeakTempC:         r.PeakTemp,
		ThrottledFraction: r.ThrottledFraction,
		EnergyDelivered:   r.EnergyDelivered,
		EnergyRequested:   r.EnergyRequested,
		Slowdown:          r.Slowdown(),
	}
}
