package thermalsched

import (
	"strings"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
)

// PEInfo describes one processing element of a response's architecture.
type PEInfo struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	AreaMM2 float64 `json:"areaMM2"`
	Cost    float64 `json:"cost"`
}

// PEStat is one processing element's steady-state operating point.
type PEStat struct {
	Name   string  `json:"name"`
	PowerW float64 `json:"powerW"`
	TempC  float64 `json:"tempC"`
}

// DTMReport summarizes a FlowDTM transient run.
type DTMReport struct {
	Controller        string  `json:"controller"`
	Steps             int     `json:"steps"`
	PeakTempC         float64 `json:"peakTempC"`
	ThrottledFraction float64 `json:"throttledFraction"`
	EnergyDelivered   float64 `json:"energyDelivered"`
	EnergyRequested   float64 `json:"energyRequested"`
	// Slowdown is the fraction of requested energy denied by
	// throttling — a proxy for the execution-time penalty of DTM.
	Slowdown float64 `json:"slowdown"`
}

// Response is the JSON-serializable outcome of one Engine request. The
// CLI's -json mode and the thermschedd service emit exactly this schema.
type Response struct {
	// Flow and Policy echo the resolved request; Graph names the input
	// task graph.
	Flow   FlowKind `json:"flow"`
	Graph  string   `json:"graph,omitempty"`
	Policy string   `json:"policy,omitempty"`
	// Metrics are the paper's table columns (platform, cosynthesis and
	// dtm flows).
	Metrics *FlowMetrics `json:"metrics,omitempty"`
	// Architecture lists the scheduled PEs; PerPE their steady-state
	// power and temperature.
	Architecture []PEInfo `json:"architecture,omitempty"`
	PerPE        []PEStat `json:"perPE,omitempty"`
	// Floorplan is the layout in HotSpot .flp text form (cosynthesis).
	Floorplan string `json:"floorplan,omitempty"`
	// Gantt is the per-PE timeline, present when the request asked for it.
	Gantt string `json:"gantt,omitempty"`
	// Sweep carries the FlowSweep aggregate.
	Sweep *SweepResult `json:"sweep,omitempty"`
	// DTM carries the FlowDTM transient summary.
	DTM *DTMReport `json:"dtm,omitempty"`
	// ElapsedMS is the server-side wall-clock cost of the run.
	ElapsedMS float64 `json:"elapsedMs"`
	// Error is set instead of the payload fields when a batch entry or
	// service call fails; Engine.Run itself returns Go errors.
	Error string `json:"error,omitempty"`
}

// flowResponse assembles the shared parts of a platform/cosynthesis/dtm
// response from a flow result.
func flowResponse(flow FlowKind, policy Policy, res *cosynth.Result, includeGantt, includePlan bool) (*Response, error) {
	resp := &Response{
		Flow:    flow,
		Graph:   res.Schedule.Graph.Name,
		Policy:  policy.String(),
		Metrics: &res.Metrics,
	}
	lib := res.Schedule.Lib
	for _, pe := range res.Arch.PEs {
		t := lib.PEType(pe.Type)
		resp.Architecture = append(resp.Architecture, PEInfo{
			Name: pe.Name, Type: t.Name, AreaMM2: t.Area * 1e6, Cost: t.Cost,
		})
	}
	pow, err := res.Schedule.PEAveragePower(res.Schedule.Graph.Deadline)
	if err != nil {
		return nil, err
	}
	temps, err := res.Oracle.Temps(pow)
	if err != nil {
		return nil, err
	}
	for i, name := range res.Arch.PENames() {
		t, _ := temps.Of(name)
		resp.PerPE = append(resp.PerPE, PEStat{Name: name, PowerW: pow[i], TempC: t})
	}
	if includePlan {
		var b strings.Builder
		if err := res.Plan.Write(&b); err != nil {
			return nil, err
		}
		resp.Floorplan = b.String()
	}
	if includeGantt {
		resp.Gantt = res.Schedule.Gantt()
	}
	return resp, nil
}

// dtmReport converts a controller run into the response summary.
func dtmReport(controller string, r *dtm.RunResult) *DTMReport {
	return &DTMReport{
		Controller:        controller,
		Steps:             r.Steps,
		PeakTempC:         r.PeakTemp,
		ThrottledFraction: r.ThrottledFraction,
		EnergyDelivered:   r.EnergyDelivered,
		EnergyRequested:   r.EnergyRequested,
		Slowdown:          r.Slowdown(),
	}
}
