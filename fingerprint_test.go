package thermalsched

import (
	"reflect"
	"testing"
)

// fpBase is a request exercising every scalar knob with a non-default
// value, so per-field perturbations are visible against it.
func fpBase() Request {
	w := 1.5
	return Request{
		Flow:                 FlowCoSynthesis,
		Benchmark:            "Bm1",
		Policy:               "thermal",
		BusTimePerUnit:       0.2,
		TempWeight:           &w,
		MaxPEs:               5,
		CandidateTypes:       []string{"pe1", "pe2"},
		FloorplanGenerations: 12,
		SweepCount:           3,
		IncludeGantt:         true,
	}
}

// Every semantic Request field must move the fingerprint; Parallelism
// must not (results are byte-identical at every parallelism level, so
// requests differing only there coalesce).
func TestRequestFingerprintSensitivity(t *testing.T) {
	base := fpBase()
	again := fpBase()
	fp := base.Fingerprint()
	if fp != again.Fingerprint() {
		t.Fatal("equal requests produced different fingerprints")
	}

	seed0, seed2 := int64(0), int64(2)
	w2 := 2.5
	variants := map[string]Request{
		"Flow":                 func(r Request) Request { r.Flow = FlowPlatform; return r }(base),
		"Benchmark":            func(r Request) Request { r.Benchmark = "Bm2"; return r }(base),
		"Policy":               func(r Request) Request { r.Policy = "h1"; return r }(base),
		"Solver":               func(r Request) Request { r.Solver = "sparse"; return r }(base),
		"BusTimePerUnit":       func(r Request) Request { r.BusTimePerUnit = 0.3; return r }(base),
		"TempWeight":           func(r Request) Request { r.TempWeight = &w2; return r }(base),
		"TempWeight-nil":       func(r Request) Request { r.TempWeight = nil; return r }(base),
		"PowerWeight":          func(r Request) Request { r.PowerWeight = &w2; return r }(base),
		"EnergyWeight":         func(r Request) Request { r.EnergyWeight = &w2; return r }(base),
		"ThermalHorizon":       func(r Request) Request { r.ThermalHorizon = &w2; return r }(base),
		"MaxPEs":               func(r Request) Request { r.MaxPEs = 6; return r }(base),
		"CandidateTypes":       func(r Request) Request { r.CandidateTypes = []string{"pe1"}; return r }(base),
		"FloorplanGenerations": func(r Request) Request { r.FloorplanGenerations = 13; return r }(base),
		"SweepCount":           func(r Request) Request { r.SweepCount = 4; return r }(base),
		"IncludeGantt":         func(r Request) Request { r.IncludeGantt = false; return r }(base),
		"Seed-explicit-zero":   func(r Request) Request { r.Seed = &seed0; return r }(base),
		"Seed-two":             func(r Request) Request { r.Seed = &seed2; return r }(base),
		"Graph": func(r Request) Request {
			r.Graph = &GraphSpec{Name: "g", Deadline: 10,
				Tasks: []TaskSpec{{ID: 0, Name: "t0", Type: 1}},
			}
			return r
		}(base),
		"Scenario": func(r Request) Request {
			r.Scenario = &ScenarioSpec{Seed: 7, Graph: ScenarioGraphParams{Tasks: 30}}
			return r
		}(base),
		"DTM":      func(r Request) Request { r.DTM = &DTMSpec{TriggerC: 90}; return r }(base),
		"Simulate": func(r Request) Request { r.Simulate = &SimulateSpec{Replicas: 2}; return r }(base),
		"Campaign": func(r Request) Request { r.Campaign = &CampaignSpec{Scenarios: 3}; return r }(base),
	}
	seen := map[string]string{fp: "base"}
	for name, req := range variants {
		got := req.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbing %s collides with %s (fingerprint %s)", name, prev, got)
			continue
		}
		seen[got] = name
	}

	par := base
	par.Parallelism = 4
	if par.Fingerprint() != fp {
		t.Error("Parallelism moved the fingerprint; requests differing only in parallelism must coalesce")
	}
}

// The documented canonicalizations: nil Seed is seed 1; nil and
// zero-valued DTM/Simulate specs are the calibrated defaults; campaign
// spec defaults are normalized; but a campaign's Simulate presence is
// semantic and an explicit seed 0 is not seed 1.
func TestRequestFingerprintNormalization(t *testing.T) {
	a := NewRequest(FlowSweep)
	b := NewRequest(FlowSweep, WithSeed(1))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("nil seed and explicit seed 1 must share a fingerprint")
	}
	zero := NewRequest(FlowSweep, WithSeed(0))
	if zero.Fingerprint() == a.Fingerprint() {
		t.Error("explicit seed 0 collapsed into the nil-seed default")
	}

	dtmNil := NewRequest(FlowDTM, WithBenchmark("Bm1"))
	dtmZero := NewRequest(FlowDTM, WithBenchmark("Bm1"), WithDTM(DTMSpec{}))
	dtmDefault := NewRequest(FlowDTM, WithBenchmark("Bm1"), WithDTM(DTMSpec{TriggerC: 85}))
	if dtmNil.Fingerprint() != dtmZero.Fingerprint() || dtmNil.Fingerprint() != dtmDefault.Fingerprint() {
		t.Error("nil, zero and explicitly-default DTM specs must share a fingerprint")
	}

	simNil := NewRequest(FlowSimulate, WithBenchmark("Bm1"))
	simZero := NewRequest(FlowSimulate, WithBenchmark("Bm1"), WithSimulate(SimulateSpec{}))
	if simNil.Fingerprint() != simZero.Fingerprint() {
		t.Error("nil and zero simulate specs must share a fingerprint")
	}

	cmpNil := NewRequest(FlowCampaign)
	cmpZero := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{}))
	cmpDefault := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Scenarios: 8}))
	if cmpNil.Fingerprint() != cmpZero.Fingerprint() || cmpNil.Fingerprint() != cmpDefault.Fingerprint() {
		t.Error("nil, zero and explicitly-default campaign specs must share a fingerprint")
	}
	cmpSim := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{Simulate: &SimulateSpec{}}))
	if cmpSim.Fingerprint() == cmpNil.Fingerprint() {
		t.Error("a campaign with closed-loop simulation fingerprints like the static campaign")
	}
}

// Field coverage of Fingerprint is enforced statically by the
// thermalvet fpfields analyzer against the //thermalvet:serializes
// registrations on the serializer (run `go run ./cmd/thermalvet .`).
// This keeps one slim runtime pin on the top-level Request as
// belt-and-braces for builds that skip vet.
func TestRequestFingerprintCoversFields(t *testing.T) {
	if n := reflect.TypeOf(Request{}).NumField(); n != 22 {
		t.Errorf("Request now has %d fields (pinned 22); extend Request.Fingerprint's explicit serialization (fpfields enforces the rest)", n)
	}
}

// Graph content must be fully covered: task and edge perturbations all
// move the fingerprint.
func TestRequestFingerprintGraphSensitivity(t *testing.T) {
	mk := func(mut func(*GraphSpec)) string {
		g := &GraphSpec{Name: "g", Deadline: 10,
			Tasks: []TaskSpec{{ID: 0, Name: "a", Type: 1}, {ID: 1, Name: "b", Type: 2}},
			Edges: []EdgeSpec{{From: 0, To: 1, Data: 5, Prob: 0.5}},
		}
		mut(g)
		r := NewRequest(FlowPlatform, WithGraphSpec(g))
		return r.Fingerprint()
	}
	base := mk(func(*GraphSpec) {})
	muts := map[string]func(*GraphSpec){
		"name":      func(g *GraphSpec) { g.Name = "h" },
		"deadline":  func(g *GraphSpec) { g.Deadline = 11 },
		"task-id":   func(g *GraphSpec) { g.Tasks[1].ID = 2 },
		"task-name": func(g *GraphSpec) { g.Tasks[1].Name = "c" },
		"task-type": func(g *GraphSpec) { g.Tasks[1].Type = 3 },
		"edge-from": func(g *GraphSpec) { g.Edges[0].From = 1 },
		"edge-to":   func(g *GraphSpec) { g.Edges[0].To = 0 },
		"edge-data": func(g *GraphSpec) { g.Edges[0].Data = 6 },
		"edge-prob": func(g *GraphSpec) { g.Edges[0].Prob = 0.6 },
	}
	for name, mut := range muts {
		if mk(mut) == base {
			t.Errorf("perturbing graph %s did not change the fingerprint", name)
		}
	}
}
